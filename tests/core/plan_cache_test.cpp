#include "core/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/tvmec.h"
#include "gf/gf.h"
#include "gf/gf_matrix.h"

namespace tvmec::core {
namespace {

PlanKey key_for(std::vector<std::size_t> erased, bool optimized = false) {
  return PlanKey{10, 4, 8, ec::RsFamily::CauchyGood, optimized,
                 std::move(erased)};
}

/// A real builder against a real generator, counting invocations.
struct CountingBuilder {
  gf::Matrix generator;
  std::vector<std::size_t> erased;
  int calls = 0;

  std::optional<ec::DecodePlan> operator()() {
    ++calls;
    return ec::make_decode_plan(generator, erased);
  }
};

gf::Matrix test_generator(std::size_t k, std::size_t r) {
  ec::ReedSolomon rs(ec::CodeParams{k, r, 8});
  return rs.generator();
}

TEST(PlanCache, MissBuildsThenHitsReturnSamePlan) {
  PlanCache cache;
  const auto gen = test_generator(10, 4);
  CountingBuilder build{gen, {1, 5}};

  const auto first = cache.get_or_build(key_for({1, 5}), std::ref(build));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(build.calls, 1);

  const auto second = cache.get_or_build(key_for({1, 5}), std::ref(build));
  EXPECT_EQ(second.get(), first.get());  // shared, not rebuilt
  EXPECT_EQ(build.calls, 1);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(PlanCache, NegativeResultIsCached) {
  PlanCache cache;
  int calls = 0;
  const auto build = [&]() -> std::optional<ec::DecodePlan> {
    ++calls;
    return std::nullopt;  // unrecoverable pattern
  };
  EXPECT_EQ(cache.get_or_build(key_for({0, 1, 2, 3, 4}), build), nullptr);
  EXPECT_EQ(cache.get_or_build(key_for({0, 1, 2, 3, 4}), build), nullptr);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(PlanCache, DistinctKeysDoNotAlias) {
  PlanCache cache;
  const auto gen = test_generator(10, 4);
  CountingBuilder greedy{gen, {2}};
  CountingBuilder other{gen, {3}};

  const auto a = cache.get_or_build(key_for({2}, false), std::ref(greedy));
  const auto b = cache.get_or_build(key_for({2}, true), std::ref(greedy));
  const auto c = cache.get_or_build(key_for({3}, false), std::ref(other));
  EXPECT_NE(a.get(), b.get());  // optimized flag separates entries
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(PlanCache, VariantPinnedKeysDoNotAlias) {
  // The recovery matrix is variant-independent, but a consumer that pins
  // a kernel tier must not share an entry with one pinned to another —
  // and the Auto default must keep its own shared entry.
  PlanCache cache;
  const auto gen = test_generator(10, 4);
  CountingBuilder build{gen, {2}};

  PlanKey auto_key = key_for({2});
  PlanKey scalar_key = key_for({2});
  scalar_key.variant = tensor::KernelVariant::Scalar;
  PlanKey avx2_key = key_for({2});
  avx2_key.variant = tensor::KernelVariant::Avx2;

  const auto a = cache.get_or_build(auto_key, std::ref(build));
  const auto b = cache.get_or_build(scalar_key, std::ref(build));
  const auto c = cache.get_or_build(avx2_key, std::ref(build));
  const auto a2 = cache.get_or_build(auto_key, std::ref(build));
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(b.get(), c.get());
  EXPECT_EQ(a.get(), a2.get());
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(build.calls, 3);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const auto gen = test_generator(10, 4);
  CountingBuilder b0{gen, {0}};
  CountingBuilder b1{gen, {1}};
  CountingBuilder b2{gen, {2}};

  cache.get_or_build(key_for({0}), std::ref(b0));
  cache.get_or_build(key_for({1}), std::ref(b1));
  cache.get_or_build(key_for({0}), std::ref(b0));  // touch {0}: now MRU
  cache.get_or_build(key_for({2}), std::ref(b2));  // evicts {1}

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  cache.get_or_build(key_for({0}), std::ref(b0));  // still cached
  EXPECT_EQ(b0.calls, 1);
  cache.get_or_build(key_for({1}), std::ref(b1));  // was evicted: rebuilds
  EXPECT_EQ(b1.calls, 2);
}

TEST(PlanCache, ClearEmptiesEntries) {
  PlanCache cache;
  const auto gen = test_generator(10, 4);
  CountingBuilder build{gen, {7}};
  cache.get_or_build(key_for({7}), std::ref(build));
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.get_or_build(key_for({7}), std::ref(build));
  EXPECT_EQ(build.calls, 2);
}

TEST(PlanCache, RejectsZeroCapacity) {
  EXPECT_THROW(PlanCache(0), std::invalid_argument);
}

TEST(PlanCache, ConcurrentGetOrBuildIsSafe) {
  PlanCache cache;
  const auto gen = test_generator(10, 4);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  constexpr int kIters = 200;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::size_t id = static_cast<std::size_t>((t + i) % 6);
        const auto plan = cache.get_or_build(key_for({id}), [&] {
          ++builds;
          return ec::make_decode_plan(gen, std::vector<std::size_t>{id});
        });
        ASSERT_NE(plan, nullptr);
        ASSERT_EQ(plan->erased.size(), 1u);
        ASSERT_EQ(plan->erased[0], id);
      }
    });
  }
  for (auto& th : threads) th.join();

  // The mutex serializes builders, so each of the 6 patterns is built
  // exactly once no matter how the threads interleave.
  EXPECT_EQ(builds.load(), 6);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
}

/// Two codecs over the same code sharing one cache: the second codec's
/// decode hits the plans the first one built — the cross-consumer sharing
/// the serve workers and the scrubber rely on.
TEST(PlanCache, SharedAcrossCodecInstances) {
  const auto cache = std::make_shared<PlanCache>();
  constexpr std::size_t kUnit = 1024;
  const ec::CodeParams params{6, 3, 8};

  Codec first(params);
  first.set_plan_cache(cache);
  Codec second(params);
  second.set_plan_cache(cache);

  const auto data = testutil::random_bytes(params.k * kUnit, 404);
  tensor::AlignedBuffer<std::uint8_t> stripe(params.n() * kUnit);
  std::copy(data.span().begin(), data.span().end(), stripe.data());
  first.encode(std::span<const std::uint8_t>(stripe.data(), params.k * kUnit),
               std::span<std::uint8_t>(stripe.data() + params.k * kUnit,
                                       params.r * kUnit),
               kUnit);

  const std::vector<std::size_t> pattern = {1, 4};
  tensor::AlignedBuffer<std::uint8_t> damaged(stripe.size());

  std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
  for (const std::size_t id : pattern)
    std::fill_n(damaged.data() + id * kUnit, kUnit, 0xEE);
  first.decode(damaged.span(), pattern, kUnit);
  const auto after_first = cache->stats();
  EXPECT_GE(after_first.misses, 1u);

  std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
  for (const std::size_t id : pattern)
    std::fill_n(damaged.data() + id * kUnit, kUnit, 0xEE);
  second.decode(damaged.span(), pattern, kUnit);
  ASSERT_TRUE(std::equal(stripe.span().begin(), stripe.span().end(),
                         damaged.span().begin()));

  const auto after_second = cache->stats();
  EXPECT_GT(after_second.hits, after_first.hits);
  EXPECT_EQ(after_second.misses, after_first.misses);
}

}  // namespace
}  // namespace tvmec::core
