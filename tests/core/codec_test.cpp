#include "core/tvmec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "tensor/kernel.h"

#include "../test_util.h"

namespace tvmec::core {
namespace {

using testutil::random_bytes;

constexpr std::size_t kUnit = 4096;

tensor::AlignedBuffer<std::uint8_t> make_stripe(Codec& codec,
                                                std::uint64_t seed) {
  const auto& p = codec.params();
  tensor::AlignedBuffer<std::uint8_t> stripe(p.n() * kUnit);
  const auto data = random_bytes(p.k * kUnit, seed);
  std::copy(data.span().begin(), data.span().end(), stripe.data());
  codec.encode(
      std::span<const std::uint8_t>(stripe.data(), p.k * kUnit),
      std::span<std::uint8_t>(stripe.data() + p.k * kUnit, p.r * kUnit),
      kUnit);
  return stripe;
}

TEST(Codec, EncodeMatchesReference) {
  Codec codec(ec::CodeParams{10, 4, 8});
  const auto data = random_bytes(10 * kUnit, 1);
  tensor::AlignedBuffer<std::uint8_t> parity(4 * kUnit);
  codec.encode(data.span(), parity.span(), kUnit);
  std::vector<std::uint8_t> expect(4 * kUnit);
  ec::apply_matrix_reference_bitpacket(codec.code().parity_matrix(),
                                       data.span(), expect, kUnit);
  ASSERT_TRUE(
      std::equal(expect.begin(), expect.end(), parity.span().begin()));
}

/// Every erasure pattern up to r over the full evaluation parameter grid
/// must decode back to the original stripe through the GEMM path.
class CodecDecodeTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(CodecDecodeTest, AllPatternsRoundTrip) {
  const auto [k, r] = GetParam();
  Codec codec(ec::CodeParams{k, r, 8});
  const auto stripe = make_stripe(codec, 100 * k + r);

  tensor::AlignedBuffer<std::uint8_t> damaged(stripe.size());
  for (std::size_t e = 1; e <= r; ++e) {
    for (const auto& pattern : testutil::erasure_patterns(k + r, e)) {
      std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
      for (const std::size_t id : pattern)
        std::fill_n(damaged.data() + id * kUnit, kUnit, 0xEE);
      codec.decode(damaged.span(), pattern, kUnit);
      ASSERT_TRUE(std::equal(stripe.span().begin(), stripe.span().end(),
                             damaged.span().begin()))
          << "pattern size " << e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperGrid, CodecDecodeTest,
                         ::testing::Values(std::tuple<std::size_t, std::size_t>{8, 2},
                                           std::tuple<std::size_t, std::size_t>{9, 3},
                                           std::tuple<std::size_t, std::size_t>{10, 4},
                                           std::tuple<std::size_t, std::size_t>{4, 2}),
                         [](const auto& info) {
                           return "k" + std::to_string(std::get<0>(info.param)) +
                                  "r" + std::to_string(std::get<1>(info.param));
                         });

TEST(Codec, DecodeValidation) {
  Codec codec(ec::CodeParams{4, 2, 8});
  auto stripe = make_stripe(codec, 5);
  // Too many erasures.
  const std::vector<std::size_t> too_many = {0, 1, 2};
  EXPECT_THROW(codec.decode(stripe.span(), too_many, kUnit),
               std::runtime_error);
  // Wrong stripe size.
  const std::vector<std::size_t> one = {0};
  EXPECT_THROW(
      codec.decode(stripe.span().subspan(0, 5 * kUnit), one, kUnit),
      std::invalid_argument);
  // Out-of-range id.
  const std::vector<std::size_t> bad_id = {6};
  EXPECT_THROW(codec.decode(stripe.span(), bad_id, kUnit),
               std::invalid_argument);
  // Empty erasure list is a no-op.
  EXPECT_NO_THROW(codec.decode(stripe.span(), {}, kUnit));
}

TEST(Codec, DecodeCacheReusesPlans) {
  Codec codec(ec::CodeParams{6, 3, 8});
  auto stripe = make_stripe(codec, 6);
  EXPECT_EQ(codec.decode_cache_size(), 0u);

  tensor::AlignedBuffer<std::uint8_t> damaged(stripe.size());
  const std::vector<std::size_t> pattern = {1, 4};
  for (int round = 0; round < 3; ++round) {
    std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
    std::fill_n(damaged.data() + kUnit, kUnit, 0);
    std::fill_n(damaged.data() + 4 * kUnit, kUnit, 0);
    codec.decode(damaged.span(), pattern, kUnit);
  }
  EXPECT_EQ(codec.decode_cache_size(), 1u);

  // Unordered ids hit the same cache entry.
  const std::vector<std::size_t> reversed = {4, 1};
  std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
  codec.decode(damaged.span(), reversed, kUnit);
  EXPECT_EQ(codec.decode_cache_size(), 1u);
}

TEST(Codec, EncodePtrsMatchesContiguous) {
  const ec::CodeParams p{6, 3, 8};
  Codec codec(p);
  std::vector<tensor::AlignedBuffer<std::uint8_t>> data_units;
  std::vector<const std::uint8_t*> data_ptrs;
  for (std::size_t i = 0; i < p.k; ++i) {
    data_units.push_back(random_bytes(kUnit, 300 + i));
    data_ptrs.push_back(data_units.back().data());
  }
  std::vector<tensor::AlignedBuffer<std::uint8_t>> parity_units(p.r);
  std::vector<std::uint8_t*> parity_ptrs;
  for (auto& u : parity_units) {
    u = tensor::AlignedBuffer<std::uint8_t>(kUnit);
    parity_ptrs.push_back(u.data());
  }
  codec.encode_ptrs(data_ptrs, parity_ptrs, kUnit);

  tensor::AlignedBuffer<std::uint8_t> contig(p.k * kUnit);
  for (std::size_t i = 0; i < p.k; ++i)
    std::copy_n(data_units[i].data(), kUnit, contig.data() + i * kUnit);
  tensor::AlignedBuffer<std::uint8_t> expect(p.r * kUnit);
  codec.encode(contig.span(), expect.span(), kUnit);
  for (std::size_t i = 0; i < p.r; ++i)
    ASSERT_TRUE(std::equal(parity_units[i].span().begin(),
                           parity_units[i].span().end(),
                           expect.data() + i * kUnit));
}

TEST(Codec, EncodePtrsValidation) {
  Codec codec(ec::CodeParams{4, 2, 8});
  tensor::AlignedBuffer<std::uint8_t> buf(kUnit);
  std::vector<const std::uint8_t*> data = {buf.data(), buf.data(),
                                           buf.data()};  // only 3
  std::vector<std::uint8_t*> parity = {buf.data(), buf.data()};
  EXPECT_THROW(codec.encode_ptrs(data, parity, kUnit), std::invalid_argument);
  data.push_back(nullptr);
  EXPECT_THROW(codec.encode_ptrs(data, parity, kUnit), std::invalid_argument);
}

TEST(Codec, TuneClearsDecodeCacheAndStaysCorrect) {
  Codec codec(ec::CodeParams{6, 3, 8});
  auto stripe = make_stripe(codec, 7);
  tensor::AlignedBuffer<std::uint8_t> damaged(stripe.size());
  std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
  const std::vector<std::size_t> pattern = {0};
  codec.decode(damaged.span(), pattern, kUnit);
  EXPECT_EQ(codec.decode_cache_size(), 1u);

  tune::TuneOptions opt;
  opt.policy = tune::Policy::Random;
  opt.trials = 6;
  codec.tune(kUnit, opt, 1);
  EXPECT_EQ(codec.decode_cache_size(), 0u);

  // Encode and decode still agree with the original stripe.
  auto stripe2 = make_stripe(codec, 7);
  ASSERT_TRUE(std::equal(stripe.span().begin(), stripe.span().end(),
                         stripe2.span().begin()));
}

/// Linearity in action: a delta-update of one data unit must leave the
/// stripe identical to a full re-encode with the new data.
TEST(Codec, UpdateUnitMatchesFullReencode) {
  const ec::CodeParams p{6, 3, 8};
  Codec codec(p);
  auto stripe = make_stripe(codec, 11);

  for (const std::size_t unit_id : {0u, 3u, 5u}) {
    const auto new_data = random_bytes(kUnit, 500 + unit_id);
    codec.update_unit(stripe.span(), unit_id, new_data.span(), kUnit);

    // Expected: full re-encode of the updated data half.
    tensor::AlignedBuffer<std::uint8_t> expect_parity(p.r * kUnit);
    codec.encode(
        std::span<const std::uint8_t>(stripe.data(), p.k * kUnit),
        expect_parity.span(), kUnit);
    ASSERT_TRUE(std::equal(expect_parity.span().begin(),
                           expect_parity.span().end(),
                           stripe.data() + p.k * kUnit))
        << "unit " << unit_id;
    // And the data landed.
    ASSERT_TRUE(std::equal(new_data.span().begin(), new_data.span().end(),
                           stripe.data() + unit_id * kUnit));
  }
}

TEST(Codec, UpdateUnitThenDecodeStillRecovers) {
  const ec::CodeParams p{4, 2, 8};
  Codec codec(p);
  auto stripe = make_stripe(codec, 12);
  const auto new_data = random_bytes(kUnit, 600);
  codec.update_unit(stripe.span(), 2, new_data.span(), kUnit);

  const tensor::AlignedBuffer<std::uint8_t> pristine = stripe;
  const std::vector<std::size_t> erased = {2, 4};
  std::fill_n(stripe.data() + 2 * kUnit, kUnit, 0);
  std::fill_n(stripe.data() + 4 * kUnit, kUnit, 0);
  codec.decode(stripe.span(), erased, kUnit);
  ASSERT_TRUE(std::equal(pristine.span().begin(), pristine.span().end(),
                         stripe.span().begin()));
}

TEST(Codec, UpdateUnitValidation) {
  Codec codec(ec::CodeParams{4, 2, 8});
  auto stripe = make_stripe(codec, 13);
  const auto new_data = random_bytes(kUnit, 700);
  // Parity units cannot be "updated".
  EXPECT_THROW(codec.update_unit(stripe.span(), 4, new_data.span(), kUnit),
               std::invalid_argument);
  // Wrong new-data size.
  EXPECT_THROW(codec.update_unit(stripe.span(), 0,
                                 new_data.span().subspan(0, kUnit / 2), kUnit),
               std::invalid_argument);
  // Wrong stripe size.
  EXPECT_THROW(codec.update_unit(stripe.span().subspan(0, 5 * kUnit), 0,
                                 new_data.span(), kUnit),
               std::invalid_argument);
}

TEST(Codec, OptimizedPlansDecodeIdentically) {
  Codec codec(ec::CodeParams{10, 4, 8});
  auto stripe = make_stripe(codec, 21);
  codec.set_plan_optimization(true);
  EXPECT_TRUE(codec.plan_optimization());

  tensor::AlignedBuffer<std::uint8_t> damaged(stripe.size());
  for (const std::vector<std::size_t>& pattern :
       {std::vector<std::size_t>{0}, {3, 12}, {1, 5, 9, 13}}) {
    std::copy(stripe.span().begin(), stripe.span().end(), damaged.data());
    for (const std::size_t id : pattern)
      std::fill_n(damaged.data() + id * kUnit, kUnit, 0);
    codec.decode(damaged.span(), pattern, kUnit);
    ASSERT_TRUE(std::equal(stripe.span().begin(), stripe.span().end(),
                           damaged.span().begin()));
  }
  // Toggling clears the plan cache.
  EXPECT_GT(codec.decode_cache_size(), 0u);
  codec.set_plan_optimization(false);
  EXPECT_EQ(codec.decode_cache_size(), 0u);
}

TEST(Codec, TuneCachedReusesLoggedSchedules) {
  const std::string log =
      ::testing::TempDir() + "/codec_tune_cached.log";
  std::remove(log.c_str());

  tune::TuneOptions opt;
  opt.policy = tune::Policy::Random;
  opt.trials = 6;
  opt.seed = 5;

  Codec first(ec::CodeParams{6, 3, 8});
  const auto fresh = first.tune_cached(kUnit, opt, 1, log);
  EXPECT_EQ(fresh.history.size(), 6u);

  // A second codec with the same shape loads the log instead of tuning:
  // same best schedule, and the history comes back verbatim.
  Codec second(ec::CodeParams{6, 3, 8});
  const auto cached = second.tune_cached(kUnit, opt, 1, log);
  EXPECT_EQ(cached.best_schedule, fresh.best_schedule);
  EXPECT_EQ(cached.history.size(), fresh.history.size());
  EXPECT_EQ(second.encoder().schedule(), fresh.best_schedule);

  // A different task shape tunes fresh and appends.
  Codec other(ec::CodeParams{4, 2, 8});
  const auto other_result = other.tune_cached(kUnit, opt, 1, log);
  EXPECT_EQ(other_result.history.size(), 6u);
  EXPECT_NE(other.encoder().task_shape(kUnit).m,
            first.encoder().task_shape(kUnit).m);

  // Cached codec still encodes correctly.
  auto stripe = make_stripe(second, 77);
  tensor::AlignedBuffer<std::uint8_t> damaged = stripe;
  const std::vector<std::size_t> erased = {0, 4, 8};
  for (const auto id : erased)
    std::fill_n(damaged.data() + id * kUnit, kUnit, 0);
  second.decode(damaged.span(), erased, kUnit);
  EXPECT_TRUE(std::equal(stripe.span().begin(), stripe.span().end(),
                         damaged.span().begin()));
  std::remove(log.c_str());
}

TEST(Codec, InvalidParamsThrow) {
  EXPECT_THROW(Codec codec(ec::CodeParams{0, 2, 8}), std::invalid_argument);
  EXPECT_THROW(Codec codec(ec::CodeParams{300, 4, 8}), std::invalid_argument);
}


/// encode_scattered with per-unit buffers must match contiguous encode
/// byte-for-byte, and aligned units must not stage. Threshold 0: this
/// test pins the zero-copy machinery itself; the default small-unit
/// routing is pinned separately below.
TEST(Codec, EncodeScatteredMatchesContiguous) {
  Codec codec(ec::CodeParams{10, 4, 8});
  codec.set_scattered_staging_threshold(0);
  const auto& p = codec.params();

  // Contiguous oracle.
  const auto flat = random_bytes(p.k * kUnit, 31);
  tensor::AlignedBuffer<std::uint8_t> want(p.r * kUnit);
  codec.encode(flat.span(), want.span(), kUnit);

  // The same stripe as k + r separately allocated (aligned) units.
  std::vector<tensor::AlignedBuffer<std::uint8_t>> units;
  std::vector<const std::uint8_t*> in_ptrs;
  std::vector<std::uint8_t*> out_ptrs;
  for (std::size_t u = 0; u < p.k; ++u) {
    units.emplace_back(kUnit);
    std::memcpy(units.back().data(), flat.data() + u * kUnit, kUnit);
    in_ptrs.push_back(units.back().data());
  }
  for (std::size_t u = 0; u < p.r; ++u) {
    units.emplace_back(kUnit);
    out_ptrs.push_back(units.back().data());
  }

  const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
  codec.encode_scattered(in_ptrs, out_ptrs, kUnit);
  EXPECT_EQ(tensor::kernel_stage_stats().stage_copies, before)
      << "aligned scattered encode must not stage";
  for (std::size_t u = 0; u < p.r; ++u)
    EXPECT_EQ(std::memcmp(out_ptrs[u], want.data() + u * kUnit, kUnit), 0)
        << "parity unit " << u;
}

TEST(Codec, EncodeScatteredMisalignedUnitsStillCorrect) {
  Codec codec(ec::CodeParams{6, 3, 8});
  codec.set_scattered_staging_threshold(0);
  const auto& p = codec.params();
  const auto flat = random_bytes(p.k * kUnit, 37);
  tensor::AlignedBuffer<std::uint8_t> want(p.r * kUnit);
  codec.encode(flat.span(), want.span(), kUnit);

  // Units shifted one byte off word alignment force the staged fallback;
  // the result must be identical and the counter must record the copies.
  std::vector<tensor::AlignedBuffer<std::uint8_t>> units;
  std::vector<const std::uint8_t*> in_ptrs;
  std::vector<std::uint8_t*> out_ptrs;
  for (std::size_t u = 0; u < p.k; ++u) {
    units.emplace_back(kUnit + 1);
    std::memcpy(units.back().data() + 1, flat.data() + u * kUnit, kUnit);
    in_ptrs.push_back(units.back().data() + 1);
  }
  for (std::size_t u = 0; u < p.r; ++u) {
    units.emplace_back(kUnit + 1);
    out_ptrs.push_back(units.back().data() + 1);
  }

  const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
  codec.encode_scattered(in_ptrs, out_ptrs, kUnit);
  EXPECT_GT(tensor::kernel_stage_stats().stage_copies, before);
  for (std::size_t u = 0; u < p.r; ++u)
    EXPECT_EQ(std::memcmp(out_ptrs[u], want.data() + u * kUnit, kUnit), 0)
        << "parity unit " << u;
}

/// The E21 crossover routing: scattered operands strictly below the
/// 16 KiB default threshold take the staged accumulator even when their
/// pointers qualify for zero-copy; at the threshold they ride the
/// fragment path. Pinned on both sides so a default change is loud.
TEST(Codec, ScatteredRoutingThresholdDefault) {
  ASSERT_EQ(GemmCoder::kScatteredStageMaxBytes, 16u * 1024u);
  Codec codec(ec::CodeParams{4, 2, 8});
  ASSERT_EQ(codec.scattered_staging_threshold(),
            GemmCoder::kScatteredStageMaxBytes);
  const auto& p = codec.params();

  const auto run_at = [&](std::size_t unit) {
    const auto flat = random_bytes(p.k * unit, 91);
    tensor::AlignedBuffer<std::uint8_t> want(p.r * unit);
    codec.encode(flat.span(), want.span(), unit);
    std::vector<tensor::AlignedBuffer<std::uint8_t>> units;
    std::vector<const std::uint8_t*> in_ptrs;
    std::vector<std::uint8_t*> out_ptrs;
    for (std::size_t u = 0; u < p.k; ++u) {
      units.emplace_back(unit);
      std::memcpy(units.back().data(), flat.data() + u * unit, unit);
      in_ptrs.push_back(units.back().data());
    }
    for (std::size_t u = 0; u < p.r; ++u) {
      units.emplace_back(unit);
      out_ptrs.push_back(units.back().data());
    }
    const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
    codec.encode_scattered(in_ptrs, out_ptrs, unit);
    const std::uint64_t staged =
        tensor::kernel_stage_stats().stage_copies - before;
    for (std::size_t u = 0; u < p.r; ++u)
      EXPECT_EQ(std::memcmp(out_ptrs[u], want.data() + u * unit, unit), 0)
          << "unit_size " << unit << " parity " << u;
    return staged;
  };

  // One byte below the threshold is not word-sized; use the largest
  // aligned size below it instead.
  EXPECT_GT(run_at(GemmCoder::kScatteredStageMaxBytes - 64), 0u)
      << "sub-threshold aligned operands must stage";
  EXPECT_EQ(run_at(GemmCoder::kScatteredStageMaxBytes), 0u)
      << "at-threshold aligned operands must ride zero-copy";
}

/// decode_batch inherits the routing: small aligned stripes stage, big
/// ones don't, and both decode to the same bytes.
TEST(Codec, ScatteredRoutingThresholdAppliesToDecodeBatch) {
  Codec codec(ec::CodeParams{4, 2, 8});
  const auto run_at = [&](std::size_t unit) {
    const auto flat = random_bytes(codec.params().k * unit, 92);
    tensor::AlignedBuffer<std::uint8_t> stripe(codec.params().n() * unit);
    std::memcpy(stripe.data(), flat.data(), flat.size());
    codec.encode(flat.span(),
                 std::span<std::uint8_t>(stripe.data() + flat.size(),
                                         codec.params().r * unit),
                 unit);
    const tensor::AlignedBuffer<std::uint8_t> original = stripe;
    const std::vector<std::size_t> erased{1};
    std::fill_n(stripe.data() + unit, unit, 0xEE);
    const Codec::DecodeBatchItem item{stripe.span(), erased, unit};
    const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
    codec.decode_batch({&item, 1});
    EXPECT_TRUE(std::equal(original.span().begin(), original.span().end(),
                           stripe.span().begin()))
        << "unit_size " << unit;
    return tensor::kernel_stage_stats().stage_copies - before;
  };
  EXPECT_GT(run_at(4096), 0u);
  EXPECT_EQ(run_at(GemmCoder::kScatteredStageMaxBytes), 0u);
}

TEST(Codec, EncodeScatteredValidation) {
  Codec codec(ec::CodeParams{4, 2, 8});
  tensor::AlignedBuffer<std::uint8_t> unit(kUnit);
  std::vector<const std::uint8_t*> in(4, unit.data());
  std::vector<std::uint8_t*> out(2, unit.data());
  std::vector<const std::uint8_t*> short_in(3, unit.data());
  EXPECT_THROW(codec.encode_scattered(short_in, out, kUnit),
               std::invalid_argument);
  EXPECT_THROW(codec.encode_scattered(in, out, 0), std::invalid_argument);
  std::vector<const std::uint8_t*> with_null = in;
  with_null[2] = nullptr;
  EXPECT_THROW(codec.encode_scattered(with_null, out, kUnit),
               std::invalid_argument);
}

/// Batched decode over separately damaged stripes must not stage: the
/// survivors are read and the erased units rebuilt in place.
/// Threshold 0 again — the routing default is pinned below.
TEST(Codec, DecodeBatchIsZeroCopyForAlignedStripes) {
  Codec codec(ec::CodeParams{8, 2, 8});
  codec.set_scattered_staging_threshold(0);
  constexpr int kMembers = 5;
  std::vector<tensor::AlignedBuffer<std::uint8_t>> stripes;
  std::vector<tensor::AlignedBuffer<std::uint8_t>> originals;
  for (int i = 0; i < kMembers; ++i) {
    stripes.push_back(make_stripe(codec, 500 + static_cast<unsigned>(i)));
    originals.push_back(stripes.back());
  }
  const std::vector<std::size_t> erased{2, 9};
  std::vector<Codec::DecodeBatchItem> items;
  for (int i = 0; i < kMembers; ++i) {
    for (const std::size_t id : erased)
      std::fill_n(stripes[i].data() + id * kUnit, kUnit, 0xEE);
    items.push_back({stripes[i].span(), erased, kUnit});
  }

  const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
  codec.decode_batch(items);
  EXPECT_EQ(tensor::kernel_stage_stats().stage_copies, before);
  for (int i = 0; i < kMembers; ++i)
    EXPECT_TRUE(std::equal(originals[i].span().begin(),
                           originals[i].span().end(),
                           stripes[i].span().begin()))
        << "member " << i;
}

}  // namespace
}  // namespace tvmec::core
