#include "tune/tuning_log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "tensor/variant.h"

namespace tvmec::tune {
namespace {

/// RAII temp file path under the build tree.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + "/" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TuneResult sample_result() {
  TuneResult r;
  tensor::Schedule a;
  a.tile_m = 4;
  a.tile_n = 16;
  a.block_n = 512;
  tensor::Schedule b;
  b.tile_m = 8;
  b.tile_n = 32;
  b.block_k = 16;
  r.history.push_back({a, 5.0e9});
  r.history.push_back({b, 7.5e9});
  r.best_schedule = b;
  r.best_throughput = 7.5e9;
  return r;
}

TEST(TuningLog, RoundTrip) {
  TempFile tmp("tuning_log_roundtrip.log");
  const TaskShape shape{32, 2048, 80};
  const TuneResult original = sample_result();
  append_log(tmp.path, shape, original);

  const auto loaded = load_log(tmp.path, shape);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->history.size(), 2u);
  EXPECT_EQ(loaded->history[0].schedule, original.history[0].schedule);
  EXPECT_EQ(loaded->history[1].schedule, original.history[1].schedule);
  EXPECT_EQ(loaded->best_schedule, original.best_schedule);
  EXPECT_DOUBLE_EQ(loaded->best_throughput, 7.5e9);
}

TEST(TuningLog, FailedTrialsAreNotLogged) {
  TempFile tmp("tuning_log_failed.log");
  const TaskShape shape{32, 2048, 80};
  TuneResult result = sample_result();
  TrialRecord bad;
  bad.schedule = result.history[0].schedule;
  bad.throughput = 0.0;
  bad.failed = true;
  result.history.push_back(bad);
  result.failed_trials = 1;
  append_log(tmp.path, shape, result);

  const auto loaded = load_log(tmp.path, shape);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->history.size(), 2u);  // only the real measurements
  for (const auto& rec : loaded->history) EXPECT_GT(rec.throughput, 0.0);
}

TEST(TuningLog, MissingFileReturnsNullopt) {
  EXPECT_FALSE(load_log("/nonexistent/dir/nope.log", TaskShape{1, 1, 1})
                   .has_value());
}

TEST(TuningLog, ShapeFiltering) {
  TempFile tmp("tuning_log_shapes.log");
  const TaskShape a{32, 2048, 80};
  const TaskShape b{16, 2048, 64};
  append_log(tmp.path, a, sample_result());

  EXPECT_FALSE(load_log(tmp.path, b).has_value());
  EXPECT_TRUE(load_log(tmp.path, a).has_value());
}

TEST(TuningLog, AppendAccumulatesAcrossRuns) {
  TempFile tmp("tuning_log_append.log");
  const TaskShape shape{32, 2048, 80};
  append_log(tmp.path, shape, sample_result());
  append_log(tmp.path, shape, sample_result());
  const auto loaded = load_log(tmp.path, shape);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->history.size(), 4u);
}

TEST(TuningLog, CommentsAndBlankLinesIgnored) {
  TempFile tmp("tuning_log_comments.log");
  {
    std::ofstream out(tmp.path);
    out << "# tuning record file\n\n";
  }
  const TaskShape shape{32, 2048, 80};
  append_log(tmp.path, shape, sample_result());
  const auto loaded = load_log(tmp.path, shape);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->history.size(), 2u);
}

TEST(TuningLog, VariantPinnedRecordsRoundTrip) {
  TempFile tmp("tuning_log_variant.log");
  const TaskShape shape{32, 2048, 80};
  TuneResult result;
  for (const tensor::KernelVariant v : tensor::available_variants()) {
    tensor::Schedule s;
    s.tile_m = 4;
    s.tile_n = 16;
    s.variant = v;
    result.history.push_back({s, 4.0e9});
  }
  result.best_schedule = result.history.back().schedule;
  result.best_throughput = 4.0e9;
  append_log(tmp.path, shape, result);

  const auto loaded = load_log(tmp.path, shape);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->history.size(), result.history.size());
  for (std::size_t i = 0; i < result.history.size(); ++i)
    EXPECT_EQ(loaded->history[i].schedule.variant,
              result.history[i].schedule.variant);
}

TEST(TuningLog, LegacyRecordsLoadWithAutoVariant) {
  TempFile tmp("tuning_log_legacy.log");
  {
    std::ofstream out(tmp.path);
    out << "32x2048x80 | mt4x16 kb64 nb512 t2 | 5.0e9\n"         // 5-field
        << "32x2048x80 | mt8x32 kb0 nb1024 t4 pn g2 | 6.0e9\n";  // 7-field
  }
  LoadLogStats stats;
  const auto loaded = load_log(tmp.path, TaskShape{32, 2048, 80}, &stats);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->history.size(), 2u);
  for (const auto& rec : loaded->history)
    EXPECT_EQ(rec.schedule.variant, tensor::KernelVariant::Auto);
  EXPECT_EQ(stats.dropped_unavailable_variant, 0u);
}

TEST(TuningLog, DropsRecordsPinnedToUnavailableVariants) {
  // A log copied from a host with a different ISA must not poison this
  // one: records pinned to a tier we can't run are skipped (counted),
  // records we can replay survive.
  tensor::KernelVariant missing = tensor::KernelVariant::Auto;
  for (const tensor::KernelVariant v :
       {tensor::KernelVariant::Neon, tensor::KernelVariant::Avx512,
        tensor::KernelVariant::Avx2}) {
    if (!tensor::variant_available(v)) {
      missing = v;
      break;
    }
  }
  ASSERT_NE(missing, tensor::KernelVariant::Auto)
      << "host claims every variant; cannot stage an unavailable record";

  TempFile tmp("tuning_log_foreign.log");
  {
    std::ofstream out(tmp.path);
    out << "32x2048x80 | mt4x16 kb64 nb512 t2 pm g0 v"
        << tensor::to_string(missing) << " | 9.0e9\n"
        << "32x2048x80 | mt4x16 kb64 nb512 t2 pm g0 vscalar | 3.0e9\n";
  }
  LoadLogStats stats;
  const auto loaded = load_log(tmp.path, TaskShape{32, 2048, 80}, &stats);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->history.size(), 1u);
  EXPECT_EQ(loaded->history[0].schedule.variant,
            tensor::KernelVariant::Scalar);
  EXPECT_EQ(loaded->best_schedule.variant, tensor::KernelVariant::Scalar);
  EXPECT_EQ(stats.dropped_unavailable_variant, 1u);
}

TEST(TuningLog, MalformedRecordFailsLoudly) {
  TempFile tmp("tuning_log_bad.log");
  {
    std::ofstream out(tmp.path);
    out << "32x2048x80 | not a schedule | oops\n";
  }
  EXPECT_THROW(load_log(tmp.path, TaskShape{32, 2048, 80}),
               std::runtime_error);
}

TEST(TuningLog, AppendToUnwritablePathThrows) {
  EXPECT_THROW(
      append_log("/nonexistent/dir/x.log", TaskShape{1, 1, 1}, sample_result()),
      std::runtime_error);
}

TEST(TuningLog, LoadAllReturnsEveryShapeInFileOrder) {
  TempFile tmp("tuning_log_all.log");
  const TaskShape a{32, 2048, 80};
  const TaskShape b{16, 1024, 64};
  append_log(tmp.path, a, sample_result());
  append_log(tmp.path, b, sample_result());

  const std::vector<LogRecord> all = load_log_all(tmp.path);
  ASSERT_EQ(all.size(), 4u);  // 2 trials per shape
  EXPECT_EQ(all[0].shape.m, 32u);
  EXPECT_EQ(all[1].shape.k, 80u);
  EXPECT_EQ(all[2].shape.m, 16u);
  EXPECT_EQ(all[3].shape.n, 1024u);
  EXPECT_EQ(all[0].schedule, sample_result().history[0].schedule);
  EXPECT_DOUBLE_EQ(all[1].throughput, 7.5e9);
}

TEST(TuningLog, LoadAllMissingFileIsEmptyMalformedThrows) {
  EXPECT_TRUE(load_log_all("/nonexistent/dir/nope.log").empty());
  TempFile tmp("tuning_log_all_bad.log");
  {
    std::ofstream out(tmp.path);
    out << "32xAx80 | mt4x16 kb64 nb512 t2 | 5.0e9\n";
  }
  EXPECT_THROW(load_log_all(tmp.path), std::runtime_error);
}

TEST(TuningLog, LoadAllDropsUnavailableVariantsWithCount) {
  tensor::KernelVariant missing = tensor::KernelVariant::Auto;
  for (const tensor::KernelVariant v :
       {tensor::KernelVariant::Neon, tensor::KernelVariant::Avx512,
        tensor::KernelVariant::Avx2}) {
    if (!tensor::variant_available(v)) {
      missing = v;
      break;
    }
  }
  ASSERT_NE(missing, tensor::KernelVariant::Auto)
      << "host claims every variant; cannot stage an unavailable record";

  TempFile tmp("tuning_log_all_foreign.log");
  {
    std::ofstream out(tmp.path);
    out << "32x2048x80 | mt4x16 kb64 nb512 t2 pm g0 v"
        << tensor::to_string(missing) << " | 9.0e9\n"
        << "16x1024x64 | mt4x16 kb64 nb512 t2 pm g0 vscalar | 3.0e9\n";
  }
  LoadLogStats stats;
  const std::vector<LogRecord> all = load_log_all(tmp.path, &stats);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].shape.m, 16u);
  EXPECT_EQ(all[0].schedule.variant, tensor::KernelVariant::Scalar);
  EXPECT_EQ(stats.dropped_unavailable_variant, 1u);
}

}  // namespace
}  // namespace tvmec::tune
