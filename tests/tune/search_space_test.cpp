#include "tune/search_space.h"

#include <gtest/gtest.h>

#include <set>

namespace tvmec::tune {
namespace {

TaskShape typical_shape() { return {32, 2048, 80}; }

TEST(SearchSpace, RejectsBadInputs) {
  EXPECT_THROW(SearchSpace(TaskShape{0, 1, 1}, 1), std::invalid_argument);
  EXPECT_THROW(SearchSpace(typical_shape(), 0), std::invalid_argument);
}

TEST(SearchSpace, EverySchedulePresentAndValid) {
  const SearchSpace space(typical_shape(), 4);
  EXPECT_GT(space.size(), 100u);
  for (std::size_t i = 0; i < space.size(); ++i)
    EXPECT_TRUE(space.at(i).valid()) << "index " << i;
  EXPECT_THROW(space.at(space.size()), std::out_of_range);
}

TEST(SearchSpace, AllEnumeratesDistinctSchedules) {
  const SearchSpace space(typical_shape(), 2);
  const auto schedules = space.all();
  EXPECT_EQ(schedules.size(), space.size());
  std::set<std::string> keys;
  for (const auto& s : schedules) keys.insert(s.to_string());
  EXPECT_EQ(keys.size(), schedules.size()) << "duplicate schedule in space";
}

TEST(SearchSpace, BlocksNeverExceedProblem) {
  const TaskShape small{8, 128, 16};
  const SearchSpace space(small, 1);
  for (const auto& s : space.all()) {
    EXPECT_LT(s.block_k, small.k) << "block_k must be < k or 0";
    EXPECT_LT(s.block_n, small.n);
  }
}

TEST(SearchSpace, ThreadOptionsArePowersOfTwoUpToMax) {
  const SearchSpace space(typical_shape(), 8);
  EXPECT_EQ(space.thread_options(), (std::vector<int>{1, 2, 4, 8}));
  const SearchSpace serial(typical_shape(), 1);
  EXPECT_EQ(serial.thread_options(), (std::vector<int>{1}));
}

TEST(SearchSpace, SampleIsDeterministicUnderSeed) {
  const SearchSpace space(typical_shape(), 4);
  std::mt19937_64 rng1(7), rng2(7);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(space.sample(rng1), space.sample(rng2));
}

TEST(SearchSpace, SampleStaysInsideSpace) {
  const SearchSpace space(typical_shape(), 4);
  std::set<std::string> all_keys;
  for (const auto& s : space.all()) all_keys.insert(s.to_string());
  std::mt19937_64 rng(8);
  for (int i = 0; i < 200; ++i)
    EXPECT_TRUE(all_keys.contains(space.sample(rng).to_string()));
}

TEST(SearchSpace, MutateChangesAtMostOneKnob) {
  const SearchSpace space(typical_shape(), 4);
  std::mt19937_64 rng(9);
  const tensor::Schedule base = space.sample(rng);
  for (int i = 0; i < 100; ++i) {
    const tensor::Schedule m = space.mutate(base, rng);
    int changed = 0;
    changed += m.tile_m != base.tile_m;
    changed += m.tile_n != base.tile_n;
    changed += m.block_k != base.block_k;
    changed += m.block_n != base.block_n;
    changed += m.num_threads != base.num_threads;
    changed += m.par_axis != base.par_axis;
    changed += m.par_grain != base.par_grain;
    changed += m.variant != base.variant;
    EXPECT_LE(changed, 1);
    EXPECT_TRUE(m.valid());
  }
}

TEST(SearchSpace, ParallelAxisKnobsOfferedWithThreads) {
  const SearchSpace space(typical_shape(), 4);
  EXPECT_EQ(space.par_axis_options().size(), 3u);
  EXPECT_EQ(space.grain_options(), (std::vector<std::size_t>{0, 1, 4}));
  // The space must contain an N-partitioned multithreaded schedule — the
  // configuration the paper's multi-core wins depend on.
  bool found = false;
  for (const auto& s : space.all())
    found |= s.par_axis == tensor::ParAxis::N && s.num_threads > 1;
  EXPECT_TRUE(found);
}

TEST(SearchSpace, SerialSpaceHasNoParallelAxisDuplicates) {
  // With one thread the axis/grain knobs are perf-identical; the space
  // collapses them so serial tuning budgets are not wasted.
  const SearchSpace space(typical_shape(), 1);
  EXPECT_EQ(space.par_axis_options().size(), 1u);
  EXPECT_EQ(space.grain_options().size(), 1u);
}

TEST(SearchSpace, VariantAxisOffersEveryAvailableTierAndNeverAuto) {
  const SearchSpace space(typical_shape(), 2);
  EXPECT_EQ(space.variant_options(), tensor::available_variants());
  // Trials must pin the tier they measured — an Auto record replayed on
  // a different host would silently time a different kernel.
  std::set<tensor::KernelVariant> seen;
  for (const auto& s : space.all()) {
    EXPECT_NE(s.variant, tensor::KernelVariant::Auto) << s.to_string();
    seen.insert(s.variant);
  }
  EXPECT_EQ(seen.size(), space.variant_options().size());
}

TEST(SearchSpace, MutateReachesVariantKnob) {
  const SearchSpace space(typical_shape(), 4);
  if (space.variant_options().size() < 2)
    GTEST_SKIP() << "host offers only one kernel variant";
  std::mt19937_64 rng(11);
  const tensor::Schedule base = space.sample(rng);
  bool variant_changed = false;
  for (int i = 0; i < 500 && !variant_changed; ++i)
    variant_changed |= space.mutate(base, rng).variant != base.variant;
  EXPECT_TRUE(variant_changed);
}

TEST(SearchSpace, MutateReachesParallelAxisKnobs) {
  const SearchSpace space(typical_shape(), 4);
  std::mt19937_64 rng(10);
  tensor::Schedule base = space.sample(rng);
  base.par_axis = tensor::ParAxis::M;
  bool axis_changed = false, grain_changed = false;
  for (int i = 0; i < 500 && !(axis_changed && grain_changed); ++i) {
    const tensor::Schedule m = space.mutate(base, rng);
    axis_changed |= m.par_axis != base.par_axis;
    grain_changed |= m.par_grain != base.par_grain;
  }
  EXPECT_TRUE(axis_changed);
  EXPECT_TRUE(grain_changed);
}

}  // namespace
}  // namespace tvmec::tune
