#include "tune/cost_model.h"

#include <gtest/gtest.h>

#include <random>

namespace tvmec::tune {
namespace {

TaskShape shape() { return {32, 2048, 80}; }

TEST(Featurize, ProducesFixedDimension) {
  const SearchSpace space(shape(), 4);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto f = featurize(space.sample(rng), shape());
    EXPECT_EQ(f.size(), kNumFeatures);
    for (const double v : f) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(Featurize, DistinguishesSchedules) {
  tensor::Schedule a, b;
  a.tile_m = 1;
  a.tile_n = 1;
  b.tile_m = 8;
  b.tile_n = 8;
  EXPECT_NE(featurize(a, shape()), featurize(b, shape()));
}

TEST(CostModel, UnfittedPredictsZero) {
  const CostModel model;
  EXPECT_EQ(model.predict(tensor::default_schedule(), shape()), 0.0);
  EXPECT_FALSE(model.fitted());
}

TEST(CostModel, RejectsNegativeThroughput) {
  CostModel model;
  EXPECT_THROW(model.add_sample(tensor::default_schedule(), shape(), -1.0),
               std::invalid_argument);
}

TEST(CostModel, FitNoopWithOneSample) {
  CostModel model;
  model.add_sample(tensor::default_schedule(), shape(), 5.0);
  model.fit();
  EXPECT_FALSE(model.fitted());
}

/// The model must learn a synthetic linear relationship well enough to
/// rank schedules — that is all the tuner needs from it.
TEST(CostModel, LearnsSyntheticRanking) {
  const SearchSpace space(shape(), 8);
  // Ground truth: bigger register tiles and more threads are better.
  const auto truth = [](const tensor::Schedule& s) {
    return 10.0 * s.tile_m * s.tile_n + 50.0 * s.num_threads;
  };
  CostModel model(1e-6);
  std::mt19937_64 rng(2);
  for (int i = 0; i < 150; ++i) {
    const tensor::Schedule s = space.sample(rng);
    model.add_sample(s, shape(), truth(s));
  }
  model.fit();
  ASSERT_TRUE(model.fitted());

  // Check pairwise ranking accuracy on fresh samples with a clear gap.
  int correct = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    const tensor::Schedule a = space.sample(rng);
    const tensor::Schedule b = space.sample(rng);
    const double gap = truth(a) - truth(b);
    if (std::abs(gap) < 100.0) continue;  // skip near-ties
    ++total;
    const double pred_gap = model.predict(a, shape()) - model.predict(b, shape());
    if ((gap > 0) == (pred_gap > 0)) ++correct;
  }
  ASSERT_GT(total, 30);
  EXPECT_GT(static_cast<double>(correct) / total, 0.8)
      << correct << "/" << total;
}

TEST(CostModel, SampleCountTracksAdds) {
  CostModel model;
  EXPECT_EQ(model.num_samples(), 0u);
  model.add_sample(tensor::default_schedule(), shape(), 1.0);
  model.add_sample(tensor::default_schedule(), shape(), 2.0);
  EXPECT_EQ(model.num_samples(), 2u);
}

}  // namespace
}  // namespace tvmec::tune
