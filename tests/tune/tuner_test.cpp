#include "tune/tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace tvmec::tune {
namespace {

TaskShape shape() { return {32, 2048, 80}; }

/// A deterministic synthetic objective with a unique known optimum, so
/// search behaviour can be asserted without timing noise.
double synthetic_objective(const tensor::Schedule& s) {
  double score = 100.0;
  score += 10.0 * s.tile_m + 12.0 * s.tile_n;
  score -= 0.5 * std::abs(static_cast<double>(s.block_k) - 32.0);
  score += 20.0 * std::log2(static_cast<double>(s.num_threads));
  return score;
}

class PolicyTest : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyTest, RespectsTrialBudget) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 37;
  const TuneResult result = tune(space, synthetic_objective, opt);
  EXPECT_EQ(result.history.size(), 37u);
}

TEST_P(PolicyTest, BestMatchesHistoryMaximum) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 60;
  const TuneResult result = tune(space, synthetic_objective, opt);
  double max_seen = 0;
  for (const auto& rec : result.history)
    max_seen = std::max(max_seen, rec.throughput);
  EXPECT_DOUBLE_EQ(result.best_throughput, max_seen);
  EXPECT_DOUBLE_EQ(synthetic_objective(result.best_schedule),
                   result.best_throughput);
}

TEST_P(PolicyTest, DeterministicUnderSeed) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 40;
  opt.seed = 123;
  const TuneResult a = tune(space, synthetic_objective, opt);
  const TuneResult b = tune(space, synthetic_objective, opt);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i)
    EXPECT_EQ(a.history[i].schedule, b.history[i].schedule);
}

TEST_P(PolicyTest, FindsNearOptimalWithModestBudget) {
  const SearchSpace space(shape(), 4);
  // Exhaustive optimum for reference.
  double best = 0;
  for (const auto& s : space.all())
    best = std::max(best, synthetic_objective(s));

  TuneOptions opt;
  opt.policy = GetParam();
  // Grid search has no notion of "promising region": within a partial
  // budget it only sees a lexicographic prefix, so give it the full
  // space; the adaptive policies must get close with a fraction of it.
  opt.trials = GetParam() == Policy::Grid ? space.size() : 150;
  const TuneResult result = tune(space, synthetic_objective, opt);
  // Within 10% of the global optimum on this easy landscape.
  EXPECT_GT(result.best_throughput, 0.9 * best)
      << "policy " << to_string(GetParam());
}

TEST_P(PolicyTest, SurvivesThrowingMeasurements) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 50;
  std::size_t calls = 0;
  // Every 5th measurement crashes: 20% failed trials.
  const MeasureFn flaky = [&calls](const tensor::Schedule& s) {
    if (++calls % 5 == 0) throw std::runtime_error("segfaulted candidate");
    return synthetic_objective(s);
  };
  const TuneResult result = tune(space, flaky, opt);
  EXPECT_EQ(result.history.size(), 50u);  // full budget despite failures
  EXPECT_EQ(result.failed_trials, 10u);
  std::size_t failed_seen = 0;
  for (const auto& rec : result.history) {
    if (rec.failed) {
      ++failed_seen;
      EXPECT_EQ(rec.throughput, 0.0);
    }
  }
  EXPECT_EQ(failed_seen, 10u);
  EXPECT_GT(result.best_throughput, 0.0);
  EXPECT_DOUBLE_EQ(synthetic_objective(result.best_schedule),
                   result.best_throughput);
}

TEST_P(PolicyTest, SurvivesNaNMeasurements) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 40;
  std::size_t calls = 0;
  const MeasureFn flaky = [&calls](const tensor::Schedule& s) {
    ++calls;
    if (calls % 5 == 1) return std::nan("");
    if (calls % 5 == 2) return -3.0;
    return synthetic_objective(s);
  };
  const TuneResult result = tune(space, flaky, opt);
  EXPECT_EQ(result.history.size(), 40u);
  EXPECT_EQ(result.failed_trials, 16u);
  EXPECT_GT(result.best_throughput, 0.0);
  // NaN never leaks into the result.
  for (const auto& rec : result.history)
    EXPECT_TRUE(std::isfinite(rec.throughput));
}

TEST_P(PolicyTest, FlakyMeasurementIsDeterministic) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 30;
  opt.seed = 7;
  const auto run = [&] {
    std::size_t calls = 0;
    const MeasureFn flaky = [&calls](const tensor::Schedule& s) {
      if (++calls % 5 == 0) throw std::runtime_error("flake");
      return synthetic_objective(s);
    };
    return tune(space, flaky, opt);
  };
  const TuneResult a = run();
  const TuneResult b = run();
  ASSERT_EQ(a.history.size(), b.history.size());
  EXPECT_EQ(a.failed_trials, b.failed_trials);
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].schedule, b.history[i].schedule);
    EXPECT_EQ(a.history[i].failed, b.history[i].failed);
  }
}

TEST_P(PolicyTest, AllTrialsFailingStillReturnsValidSchedule) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = GetParam();
  opt.trials = 20;
  const MeasureFn broken = [](const tensor::Schedule&) -> double {
    throw std::runtime_error("measurement rig is down");
  };
  const TuneResult result = tune(space, broken, opt);
  EXPECT_EQ(result.history.size(), 20u);
  EXPECT_EQ(result.failed_trials, 20u);
  EXPECT_EQ(result.best_throughput, 0.0);
  // The documented fallback: the first candidate tried becomes the best.
  EXPECT_EQ(result.best_schedule, result.history.front().schedule);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(Policy::Grid, Policy::Random,
                                           Policy::Evolutionary,
                                           Policy::ModelGuided),
                         [](const auto& info) {
                           switch (info.param) {
                             case Policy::Grid:
                               return "Grid";
                             case Policy::Random:
                               return "Random";
                             case Policy::Evolutionary:
                               return "Evolutionary";
                             default:
                               return "ModelGuided";
                           }
                         });

TEST(Tuner, GridVisitsDistinctSchedulesInOrder) {
  const SearchSpace space(shape(), 2);
  TuneOptions opt;
  opt.policy = Policy::Grid;
  opt.trials = 25;
  const TuneResult result = tune(space, synthetic_objective, opt);
  for (std::size_t i = 0; i < 25; ++i)
    EXPECT_EQ(result.history[i].schedule, space.at(i));
}

TEST(Tuner, GridStopsAtSpaceExhaustion) {
  const SearchSpace space(TaskShape{8, 128, 16}, 1);
  TuneOptions opt;
  opt.policy = Policy::Grid;
  opt.trials = 100000;
  const TuneResult result = tune(space, synthetic_objective, opt);
  EXPECT_EQ(result.history.size(), space.size());
}

TEST(Tuner, ZeroTrialsThrows) {
  const SearchSpace space(shape(), 2);
  TuneOptions opt;
  opt.trials = 0;
  EXPECT_THROW(tune(space, synthetic_objective, opt), std::invalid_argument);
}

TEST(Tuner, BestAfterIsMonotone) {
  const SearchSpace space(shape(), 4);
  TuneOptions opt;
  opt.policy = Policy::Random;
  opt.trials = 80;
  const TuneResult result = tune(space, synthetic_objective, opt);
  double prev = 0;
  for (std::size_t n = 1; n <= 80; n += 8) {
    const double cur = result.best_after(n);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(result.best_after(1000), result.best_throughput);
}

/// Model-guided search should reach a given quality bar in no more
/// measured trials than pure random search on a landscape the linear
/// model can capture (this is Ansor's whole premise).
TEST(Tuner, ModelGuidedBeatsRandomOnLearnableLandscape) {
  const SearchSpace space(shape(), 8);
  double best = 0;
  for (const auto& s : space.all())
    best = std::max(best, synthetic_objective(s));
  const double bar = 0.95 * best;

  const auto trials_to_bar = [&](Policy policy) {
    TuneOptions opt;
    opt.policy = policy;
    opt.trials = 200;
    opt.seed = 7;
    const TuneResult r = tune(space, synthetic_objective, opt);
    for (std::size_t n = 1; n <= opt.trials; ++n)
      if (r.best_after(n) >= bar) return n;
    return opt.trials + 1;
  };
  EXPECT_LE(trials_to_bar(Policy::ModelGuided),
            trials_to_bar(Policy::Random));
}

TEST(MeasureSecondsMedian, ReturnsPlausibleDuration) {
  const double secs = measure_seconds_median(
      [] {
        volatile int sink = 0;
        for (int i = 0; i < 10000; ++i) sink = sink + i;
      },
      5);
  EXPECT_GT(secs, 0.0);
  EXPECT_LT(secs, 1.0);
  EXPECT_THROW(measure_seconds_median([] {}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tvmec::tune
