#include "storage/scrubber.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "storage/raid_array.h"
#include "storage/stripe_store.h"

namespace tvmec::storage {
namespace {

constexpr std::size_t kUnit = 256;

StripeStore make_store() {
  return StripeStore(ec::CodeParams{4, 2, 8}, kUnit, 8);
}

/// `stripes` objects of one stripe each, named obj00, obj01, ...
void fill_store(StripeStore& store, std::size_t objects,
                std::size_t stripes_each = 1) {
  for (std::size_t i = 0; i < objects; ++i) {
    const std::string name =
        "obj" + std::string(i < 10 ? "0" : "") + std::to_string(i);
    store.put(name, testutil::random_vector(stripes_each * 4 * kUnit, i));
  }
}

TEST(Scrubber, FullPassOverHealthyStore) {
  StripeStore store = make_store();
  fill_store(store, 5, 2);
  Scrubber scrub(store);
  const ScrubStats pass = scrub.run();
  EXPECT_EQ(pass.stripes_scanned, 10u);
  EXPECT_EQ(pass.units_verified, 10u * 6);
  EXPECT_EQ(pass.bytes_verified, 10u * 6 * kUnit);
  EXPECT_EQ(pass.errors(), 0u);
  EXPECT_EQ(pass.units_repaired, 0u);
  EXPECT_EQ(scrub.passes_completed(), 1u);
  EXPECT_EQ(scrub.last_pass().stripes_scanned, 10u);
}

TEST(Scrubber, StepsAccumulateIntoOnePass) {
  StripeStore store = make_store();
  fill_store(store, 4, 3);  // 12 stripes
  Scrubber scrub(store);
  std::size_t scanned = 0;
  std::size_t steps = 0;
  while (scrub.passes_completed() == 0) {
    const ScrubStats inc = scrub.step(5);
    scanned += inc.stripes_scanned;
    ++steps;
    ASSERT_LE(steps, 4u) << "cursor failed to advance";
  }
  EXPECT_EQ(scanned, 12u);
  EXPECT_EQ(steps, 3u);  // 5 + 5 + 2
  EXPECT_EQ(scrub.last_pass().stripes_scanned, 12u);
  EXPECT_EQ(scrub.current_pass().stripes_scanned, 0u);  // rewound
}

TEST(Scrubber, StepFindsCorruptionWhereverItHides) {
  StripeStore store = make_store();
  fill_store(store, 6, 1);
  ASSERT_TRUE(store.corrupt_unit("obj00", 0, 1));
  ASSERT_TRUE(store.corrupt_unit("obj03", 0, 4));  // a parity unit
  ASSERT_TRUE(store.corrupt_unit("obj05", 0, 2));
  Scrubber scrub(store);
  ScrubStats total;
  while (scrub.passes_completed() == 0) {
    const ScrubStats inc = scrub.step(2);
    total.crc_errors += inc.crc_errors;
    total.units_repaired += inc.units_repaired;
  }
  EXPECT_EQ(total.crc_errors, 3u);
  EXPECT_EQ(total.units_repaired, 3u);
  // Second pass: everything was healed in place.
  EXPECT_EQ(scrub.run().errors(), 0u);
  EXPECT_EQ(scrub.passes_completed(), 2u);
}

TEST(Scrubber, CursorSurvivesObjectRemoval) {
  StripeStore store = make_store();
  fill_store(store, 6, 2);
  Scrubber scrub(store);
  scrub.step(3);  // cursor now mid-store
  store.remove("obj02");
  store.remove("obj04");
  ScrubStats rest;
  while (scrub.passes_completed() == 0) {
    const ScrubStats inc = scrub.step(3);
    rest.stripes_scanned += inc.stripes_scanned;
    if (inc.stripes_scanned == 0) break;
  }
  EXPECT_EQ(scrub.passes_completed(), 1u);
  // Next full pass sees exactly the surviving 4 objects x 2 stripes.
  EXPECT_EQ(scrub.run().stripes_scanned, 8u);
}

TEST(Scrubber, CursorSeesObjectsAddedAheadOfIt) {
  StripeStore store = make_store();
  fill_store(store, 3, 1);
  Scrubber scrub(store);
  scrub.step(1);  // scanned obj00
  store.put("obj99", testutil::random_vector(4 * kUnit, 99));  // after cursor
  ScrubStats rest = scrub.run();
  EXPECT_EQ(rest.stripes_scanned, 3u);  // obj01, obj02, obj99
  EXPECT_EQ(scrub.last_pass().stripes_scanned, 4u);
}

TEST(Scrubber, ResetCursorDiscardsPartialProgress) {
  StripeStore store = make_store();
  fill_store(store, 4, 1);
  Scrubber scrub(store);
  scrub.step(2);
  EXPECT_EQ(scrub.current_pass().stripes_scanned, 2u);
  scrub.reset_cursor();
  EXPECT_EQ(scrub.current_pass().stripes_scanned, 0u);
  EXPECT_EQ(scrub.run().stripes_scanned, 4u);  // full pass from the top
  EXPECT_EQ(scrub.passes_completed(), 1u);
}

TEST(Scrubber, EmptyStoreCompletesTrivialPasses) {
  StripeStore store = make_store();
  Scrubber scrub(store);
  const ScrubStats pass = scrub.run();
  EXPECT_EQ(pass.stripes_scanned, 0u);
  EXPECT_EQ(scrub.passes_completed(), 1u);
}

TEST(Scrubber, RaidArrayPassVerifiesAndRepairs) {
  RaidArray raid(ec::CodeParams{4, 2, 8}, kUnit, 8);
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba) {
    const auto block = testutil::random_vector(kUnit, lba);
    raid.write_block(lba, block);
  }
  ASSERT_TRUE(raid.corrupt_unit(2, 1));
  ASSERT_TRUE(raid.corrupt_unit(5, 4));
  Scrubber scrub(raid);
  // Two increments that together cover the 8 stripes.
  const ScrubStats first = scrub.step(4);
  const ScrubStats second = scrub.step(8);
  EXPECT_EQ(first.stripes_scanned + second.stripes_scanned, 8u);
  EXPECT_EQ(first.crc_errors + second.crc_errors, 2u);
  EXPECT_EQ(first.units_repaired + second.units_repaired, 2u);
  EXPECT_EQ(scrub.passes_completed(), 1u);
  EXPECT_EQ(scrub.run().errors(), 0u);
  EXPECT_EQ(raid.verify(), 0u);
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
    EXPECT_EQ(raid.read_block(lba), testutil::random_vector(kUnit, lba));
}

TEST(Scrubber, UnrecoverableStripeIsCountedNotThrown) {
  StripeStore store = make_store();
  fill_store(store, 2, 1);
  // Three corrupt units in one stripe beats r = 2.
  ASSERT_TRUE(store.corrupt_unit("obj00", 0, 0));
  ASSERT_TRUE(store.corrupt_unit("obj00", 0, 1));
  ASSERT_TRUE(store.corrupt_unit("obj00", 0, 2));
  Scrubber scrub(store);
  const ScrubStats pass = scrub.run();
  EXPECT_EQ(pass.unrecoverable_stripes, 1u);
  EXPECT_EQ(pass.units_repaired, 0u);
  // The healthy object is unaffected.
  EXPECT_EQ(store.get("obj01"), testutil::random_vector(4 * kUnit, 1));
}

}  // namespace
}  // namespace tvmec::storage
