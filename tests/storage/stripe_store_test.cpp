#include "storage/stripe_store.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace tvmec::storage {
namespace {

constexpr std::size_t kUnit = 512;

StripeStore make_store(std::size_t nodes = 8) {
  return StripeStore(ec::CodeParams{4, 2, 8}, kUnit, nodes);
}

TEST(StripeStore, Construction) {
  EXPECT_NO_THROW(make_store());
  EXPECT_THROW(StripeStore(ec::CodeParams{4, 2, 8}, kUnit, 5),
               std::invalid_argument);
  EXPECT_THROW(StripeStore(ec::CodeParams{4, 2, 8}, 100, 8),
               std::invalid_argument);
}

TEST(StripeStore, PutGetRoundTrip) {
  StripeStore store = make_store();
  const auto payload = testutil::random_vector(10000, 1);  // multi-stripe
  store.put("obj", payload);
  EXPECT_TRUE(store.exists("obj"));
  const auto got = store.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(store.stats().degraded_reads, 0u);
}

TEST(StripeStore, SizesThatDontFillStripes) {
  StripeStore store = make_store();
  for (const std::size_t size : {1u, 511u, 512u, 2047u, 2048u, 2049u, 9999u}) {
    const auto payload = testutil::random_vector(size, size);
    store.put("o" + std::to_string(size), payload);
    const auto got = store.get("o" + std::to_string(size));
    ASSERT_TRUE(got.has_value()) << size;
    EXPECT_EQ(*got, payload) << size;
  }
}

TEST(StripeStore, EmptyObject) {
  StripeStore store = make_store();
  store.put("empty", {});
  const auto got = store.get("empty");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(StripeStore, MissingObjectReturnsNullopt) {
  StripeStore store = make_store();
  EXPECT_FALSE(store.get("nope").has_value());
  EXPECT_FALSE(store.exists("nope"));
}

TEST(StripeStore, OverwriteReplacesContent) {
  StripeStore store = make_store();
  store.put("obj", testutil::random_vector(3000, 2));
  const auto v2 = testutil::random_vector(1234, 3);
  store.put("obj", v2);
  EXPECT_EQ(*store.get("obj"), v2);
  EXPECT_EQ(store.stats().objects, 1u);
}

TEST(StripeStore, RemoveDeletesUnits) {
  StripeStore store = make_store();
  store.put("obj", testutil::random_vector(3000, 4));
  store.remove("obj");
  EXPECT_FALSE(store.exists("obj"));
  EXPECT_EQ(store.stats().objects, 0u);
  EXPECT_NO_THROW(store.remove("obj"));  // idempotent
}

TEST(StripeStore, DegradedReadSurvivesRFailures) {
  StripeStore store = make_store(6);  // n == nodes: every node holds a unit
  const auto payload = testutil::random_vector(20000, 5);
  store.put("obj", payload);

  store.fail_node(0);
  store.fail_node(3);
  EXPECT_TRUE(store.node_failed(0));
  const auto got = store.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_GT(store.stats().degraded_reads, 0u);
}

TEST(StripeStore, TooManyFailuresThrows) {
  StripeStore store = make_store(6);
  store.put("obj", testutil::random_vector(5000, 6));
  store.fail_node(0);
  store.fail_node(1);
  store.fail_node(2);  // r = 2, three failures is fatal
  EXPECT_THROW(store.get("obj"), std::runtime_error);
}

TEST(StripeStore, RepairRestoresRedundancy) {
  StripeStore store = make_store(6);
  const auto payload = testutil::random_vector(20000, 7);
  store.put("obj", payload);

  store.fail_node(1);
  store.revive_node(1);  // back, but empty
  const std::size_t repaired = store.repair();
  EXPECT_GT(repaired, 0u);
  EXPECT_EQ(store.stats().units_repaired, repaired);

  // A later unrelated double failure is now survivable again.
  store.fail_node(0);
  store.fail_node(2);
  const auto got = store.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(StripeStore, RepairIsIdempotent) {
  StripeStore store = make_store(6);
  store.put("obj", testutil::random_vector(5000, 8));
  store.fail_node(1);
  store.revive_node(1);
  EXPECT_GT(store.repair(), 0u);
  EXPECT_EQ(store.repair(), 0u);
}

TEST(StripeStore, ScrubCleanOnHealthyStore) {
  StripeStore store = make_store();
  store.put("a", testutil::random_vector(5000, 9));
  store.put("b", testutil::random_vector(7000, 10));
  EXPECT_EQ(store.scrub(), 0u);
}

TEST(StripeStore, SilentCorruptionIsDetectedAndHealedOnRead) {
  StripeStore store = make_store();
  const auto payload = testutil::random_vector(5000, 30);
  store.put("obj", payload);

  ASSERT_TRUE(store.corrupt_unit("obj", 0, 1));
  const auto got = store.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // checksum caught it; parity rebuilt it
  EXPECT_GT(store.stats().corruptions_detected, 0u);
}

TEST(StripeStore, ScrubFindsAndRepairsCorruption) {
  StripeStore store = make_store();
  const auto payload = testutil::random_vector(9000, 31);
  store.put("obj", payload);

  // Corrupt a data unit and a parity unit in different stripes.
  ASSERT_TRUE(store.corrupt_unit("obj", 0, 2));
  ASSERT_TRUE(store.corrupt_unit("obj", 1, 5));  // unit 5 is parity (k=4)
  EXPECT_EQ(store.scrub(), 2u);
  // Healed: a second scrub is clean and reads are exact.
  EXPECT_EQ(store.scrub(), 0u);
  EXPECT_EQ(*store.get("obj"), payload);
}

// Regression (found by the differential fuzzer, reproducer
// "fuzz:v1 s=store-fault k=7 r=1 w=16 u=16 seed=9337184620144304163
// loss=7"): chained transient-read bursts can exhaust the retry budget
// during a scrub pass, making a healthy unit look Missing. With r=1 and
// one genuinely corrupt unit, the stripe then *appeared* unrecoverable
// and scrub skipped it — leaving latent corruption on disk, so one node
// failure later the data was gone. scrub_stripe must re-attempt
// transiently missing units in fresh passes before giving up.
TEST(StripeStore, ScrubHealsCorruptionDespiteTransientReadErrors) {
  const ec::CodeParams params{7, 1, 16};
  const std::size_t unit = 16;
  const std::uint64_t seed = 9337184620144304163ULL;
  StripeStore store(params, unit, params.n() + 2);
  FaultInjector injector(
      FaultPolicy{.read_bit_flip = 0.05,
                  .transient_read = 0.1,
                  .transient_failures = 2},
      seed ^ 0xFA17);
  store.attach_fault_injector(&injector);
  store.set_retry_policy(RetryPolicy{.max_attempts = 6});

  const auto payload = testutil::random_vector(52, seed + 1);
  store.put("obj", payload);
  ASSERT_TRUE(store.corrupt_unit("obj", 0, 3));
  store.scrub();
  // The corruption must actually be healed, not merely detected.
  EXPECT_GE(store.stats().units_repaired, 1u);

  // One node failure is now survivable again (r = 1).
  store.fail_node(7);
  store.attach_fault_injector(nullptr);
  const auto got = store.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(StripeStore, CorruptUnitHookValidation) {
  StripeStore store = make_store();
  store.put("obj", testutil::random_vector(1000, 32));
  EXPECT_FALSE(store.corrupt_unit("missing", 0, 0));
  EXPECT_FALSE(store.corrupt_unit("obj", 99, 0));
  EXPECT_FALSE(store.corrupt_unit("obj", 0, 99));
}

TEST(StripeStore, NodeValidation) {
  StripeStore store = make_store();
  EXPECT_THROW(store.fail_node(100), std::invalid_argument);
  EXPECT_THROW(store.revive_node(100), std::invalid_argument);
  EXPECT_THROW(store.node_failed(100), std::invalid_argument);
  store.fail_node(2);
  store.fail_node(2);  // idempotent
  EXPECT_EQ(store.stats().failed_nodes, 1u);
  store.revive_node(2);
  store.revive_node(2);
  EXPECT_EQ(store.stats().failed_nodes, 0u);
}

/// The store must work over every supported field size (the codec's
/// bitmatrix machinery is w-generic).
class StripeStoreFieldTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StripeStoreFieldTest, RoundTripAndRepairAcrossFields) {
  const unsigned w = GetParam();
  const std::size_t unit = 16 * 8 * w;  // multiple of 8*w
  StripeStore store(ec::CodeParams{4, 2, w}, unit, 7);
  const auto payload = testutil::random_vector(3 * unit * 4 + 123, w);
  store.put("obj", payload);
  EXPECT_EQ(*store.get("obj"), payload);

  store.fail_node(1);
  store.fail_node(4);
  EXPECT_EQ(*store.get("obj"), payload);
  store.revive_node(1);
  store.revive_node(4);
  EXPECT_GT(store.repair(), 0u);
  EXPECT_EQ(store.scrub(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllFields, StripeStoreFieldTest,
                         ::testing::Values(4u, 8u, 16u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(StripeStore, ManyObjectsAcrossRotations) {
  StripeStore store = make_store(9);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(testutil::random_vector(1000 + 137 * i, 20 + i));
    store.put("obj" + std::to_string(i), payloads.back());
  }
  store.fail_node(4);
  for (int i = 0; i < 20; ++i) {
    const auto got = store.get("obj" + std::to_string(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, payloads[static_cast<std::size_t>(i)]) << i;
  }
}

}  // namespace
}  // namespace tvmec::storage
