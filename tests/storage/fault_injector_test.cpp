#include "storage/fault_injector.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "storage/retry.h"

namespace tvmec::storage {
namespace {

std::vector<std::uint8_t> bytes(std::size_t size, std::uint64_t seed) {
  return testutil::random_vector(size, seed);
}

TEST(FaultInjector, QuietPolicyNeverFaults) {
  FaultInjector inj;  // all probabilities zero
  auto payload = bytes(256, 1);
  const auto original = payload;
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(inj.on_write(0, FaultInjector::key(0, i), payload));
    EXPECT_EQ(inj.on_read(0, FaultInjector::key(0, i), payload),
              ReadFault::None);
  }
  EXPECT_EQ(payload, original);
  EXPECT_EQ(inj.stats().reads, 50u);
  EXPECT_EQ(inj.stats().writes, 50u);
  EXPECT_EQ(inj.stats().writes_corrupted, 0u);
  EXPECT_EQ(inj.stats().crashes, 0u);
}

TEST(FaultInjector, WriteBitFlipChangesExactlyOneBit) {
  FaultPolicy policy;
  policy.write_bit_flip = 1.0;
  FaultInjector inj(policy, 7);
  auto payload = bytes(512, 2);
  const auto original = payload;
  ASSERT_TRUE(inj.on_write(3, FaultInjector::key(0, 0), payload));
  std::size_t bits_changed = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::uint8_t diff = payload[i] ^ original[i];
    while (diff) {
      bits_changed += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1u);
  EXPECT_EQ(inj.stats().write_bit_flips, 1u);
  EXPECT_EQ(inj.stats().writes_corrupted, 1u);
}

TEST(FaultInjector, TornWriteCorruptsTail) {
  FaultPolicy policy;
  policy.torn_write = 1.0;
  FaultInjector inj(policy, 11);
  auto payload = bytes(512, 3);
  const auto original = payload;
  ASSERT_TRUE(inj.on_write(0, FaultInjector::key(0, 0), payload));
  // Some prefix is intact, and a suffix of >= 8 bytes was replaced.
  std::size_t first_diff = payload.size();
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (payload[i] != original[i]) {
      first_diff = i;
      break;
    }
  }
  ASSERT_LT(first_diff, payload.size());
  EXPECT_LE(first_diff, payload.size() - 8);
  EXPECT_NE(payload, original);
  EXPECT_EQ(inj.stats().torn_writes, 1u);
}

TEST(FaultInjector, TransientBurstFailsNTimesThenSucceeds) {
  FaultPolicy policy;
  policy.transient_read = 1.0;
  policy.transient_failures = 3;
  FaultInjector inj(policy, 13);
  auto payload = bytes(64, 4);
  const std::uint64_t key = FaultInjector::key("obj", 0, 0);

  // Burst: 3 failures for this unit...
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::Transient) << i;
  // ...then the policy (probability 1) immediately starts a new burst,
  // so drop the probability to model the transient clearing.
  FaultPolicy clear = policy;
  clear.transient_read = 0.0;
  inj.set_policy(clear);
  EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::None);
  EXPECT_EQ(inj.stats().transient_bursts, 1u);
  EXPECT_EQ(inj.stats().transient_errors, 3u);
}

TEST(FaultInjector, InFlightBurstSurvivesPolicySwap) {
  FaultPolicy policy;
  policy.transient_read = 1.0;
  policy.transient_failures = 4;
  FaultInjector inj(policy, 17);
  auto payload = bytes(64, 5);
  const std::uint64_t key = FaultInjector::key("obj", 1, 2);
  EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::Transient);
  inj.set_policy(FaultPolicy{});  // clean policy mid-burst
  // The remaining 3 failures of the burst still fire.
  EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::Transient);
  EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::Transient);
  EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::Transient);
  EXPECT_EQ(inj.on_read(0, key, payload), ReadFault::None);
  // Distinct units are unaffected.
  EXPECT_EQ(inj.on_read(0, FaultInjector::key("obj", 9, 9), payload),
            ReadFault::None);
}

TEST(FaultInjector, CrashIsPermanentUntilRepaired) {
  FaultPolicy policy;
  policy.crash = 1.0;
  FaultInjector inj(policy, 19);
  auto payload = bytes(64, 6);
  EXPECT_FALSE(inj.on_write(2, FaultInjector::key(0, 0), payload));
  EXPECT_TRUE(inj.crashed(2));
  EXPECT_EQ(inj.stats().crashes, 1u);
  // Already-dead node: ops fail without another crash being counted.
  EXPECT_EQ(inj.on_read(2, FaultInjector::key(0, 1), payload),
            ReadFault::Crash);
  EXPECT_FALSE(inj.on_write(2, FaultInjector::key(0, 2), payload));
  EXPECT_EQ(inj.stats().crashes, 1u);
  // Other nodes crash independently.
  EXPECT_FALSE(inj.crashed(3));

  inj.set_policy(FaultPolicy{});
  inj.repair_node(2);
  EXPECT_FALSE(inj.crashed(2));
  EXPECT_TRUE(inj.on_write(2, FaultInjector::key(0, 3), payload));
}

TEST(FaultInjector, ManualCrashHook) {
  FaultInjector inj;
  inj.crash_node(5);
  EXPECT_TRUE(inj.crashed(5));
  EXPECT_EQ(inj.stats().crashes, 1u);
  inj.crash_node(5);  // idempotent
  EXPECT_EQ(inj.stats().crashes, 1u);
}

TEST(FaultInjector, DelayIsAccounted) {
  FaultPolicy policy;
  policy.delay = 1.0;
  policy.delay_amount = std::chrono::microseconds{250};
  FaultInjector inj(policy, 23);
  auto payload = bytes(64, 7);
  inj.on_write(0, FaultInjector::key(0, 0), payload);
  inj.on_read(0, FaultInjector::key(0, 0), payload);
  EXPECT_EQ(inj.stats().delays, 2u);
  EXPECT_EQ(inj.stats().delay_injected, std::chrono::microseconds{500});
}

/// Same seed + same op sequence -> byte-identical faults. The contract
/// every chaos test rests on.
TEST(FaultInjector, DeterministicUnderSeed) {
  FaultPolicy policy;
  policy.write_bit_flip = 0.3;
  policy.torn_write = 0.2;
  policy.read_bit_flip = 0.2;
  policy.transient_read = 0.2;
  policy.crash = 0.02;

  const auto run = [&policy] {
    FaultInjector inj(policy, 99);
    std::vector<std::uint8_t> trace;
    for (std::size_t op = 0; op < 300; ++op) {
      auto payload = bytes(128, op);
      const std::size_t node = op % 7;
      const std::uint64_t key = FaultInjector::key("obj", op / 10, op % 10);
      if (op % 2 == 0) {
        inj.on_write(node, key, payload);
      } else {
        const ReadFault f = inj.on_read(node, key, payload);
        trace.push_back(static_cast<std::uint8_t>(f));
      }
      trace.insert(trace.end(), payload.begin(), payload.end());
    }
    return std::make_tuple(trace, inj.stats().write_bit_flips,
                           inj.stats().torn_writes, inj.stats().crashes,
                           inj.stats().transient_errors,
                           inj.stats().read_bit_flips);
  };
  EXPECT_EQ(run(), run());
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultPolicy policy;
  policy.write_bit_flip = 0.5;
  FaultInjector a(policy, 1), b(policy, 2);
  std::size_t diverged = 0;
  for (std::size_t op = 0; op < 64; ++op) {
    auto pa = bytes(64, op);
    auto pb = pa;
    a.on_write(0, op, pa);
    b.on_write(0, op, pb);
    if (pa != pb) ++diverged;
  }
  EXPECT_GT(diverged, 0u);
}

TEST(FaultInjector, KeysAreStable) {
  EXPECT_EQ(FaultInjector::key("obj", 1, 2), FaultInjector::key("obj", 1, 2));
  EXPECT_NE(FaultInjector::key("obj", 1, 2), FaultInjector::key("obj", 2, 1));
  EXPECT_NE(FaultInjector::key("a", 0, 0), FaultInjector::key("b", 0, 0));
  EXPECT_EQ(FaultInjector::key(3, 4), FaultInjector::key(3, 4, 0));
  EXPECT_NE(FaultInjector::key(3, 4), FaultInjector::key(4, 3));
}

TEST(FaultInjector, QuietPolicyNeverFaultsLinks) {
  FaultInjector inj;
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(inj.on_send(FaultInjector::key(0, 1)), LinkFault::None);
  EXPECT_EQ(inj.stats().link_sends, 50u);
  EXPECT_EQ(inj.stats().link_drops, 0u);
  EXPECT_EQ(inj.stats().link_duplicates, 0u);
  EXPECT_EQ(inj.stats().partitions_opened, 0u);
}

TEST(FaultInjector, LinkDropAndDuplicateRoll) {
  FaultPolicy policy;
  policy.link_drop = 1.0;
  FaultInjector inj(policy, 11);
  EXPECT_EQ(inj.on_send(FaultInjector::key(0, 1)), LinkFault::Drop);
  EXPECT_EQ(inj.stats().link_drops, 1u);

  policy.link_drop = 0.0;
  policy.link_duplicate = 1.0;
  inj.set_policy(policy);
  EXPECT_EQ(inj.on_send(FaultInjector::key(0, 1)), LinkFault::Duplicate);
  EXPECT_EQ(inj.stats().link_duplicates, 1u);
  EXPECT_EQ(inj.stats().link_sends, 2u);
}

TEST(FaultInjector, PartitionWindowDropsNSendsThenHeals) {
  FaultPolicy policy;
  policy.link_partition = 1.0;
  policy.partition_ops = 3;
  FaultInjector inj(policy, 13);
  const auto link = FaultInjector::key(2, 5);
  // First send opens the window and is eaten by it.
  EXPECT_EQ(inj.on_send(link), LinkFault::Drop);
  EXPECT_TRUE(inj.link_partitioned(link));
  // Window consumption ignores the live policy — swap to quiet and the
  // remaining 2 window ops still drop (mirrors transient-burst rules).
  inj.set_policy(FaultPolicy{});
  EXPECT_EQ(inj.on_send(link), LinkFault::Drop);
  EXPECT_EQ(inj.on_send(link), LinkFault::Drop);
  EXPECT_FALSE(inj.link_partitioned(link));
  EXPECT_EQ(inj.on_send(link), LinkFault::None);
  EXPECT_EQ(inj.stats().partitions_opened, 1u);
  EXPECT_EQ(inj.stats().partition_drops, 3u);
  EXPECT_EQ(inj.stats().link_drops, 0u);  // partition drops counted apart
}

TEST(FaultInjector, PartitionIsPerLink) {
  FaultInjector inj;
  const auto bad = FaultInjector::key(0, 1);
  const auto good = FaultInjector::key(1, 0);
  inj.partition_link(bad, 2);
  EXPECT_EQ(inj.on_send(bad), LinkFault::Drop);
  EXPECT_EQ(inj.on_send(good), LinkFault::None);
  inj.heal_link(bad);
  EXPECT_EQ(inj.on_send(bad), LinkFault::None);
  EXPECT_EQ(inj.stats().partition_drops, 1u);
}

TEST(FaultInjector, LinkFaultsDeterministicUnderSeed) {
  FaultPolicy policy;
  policy.link_drop = 0.2;
  policy.link_duplicate = 0.1;
  policy.link_partition = 0.05;
  policy.partition_ops = 4;
  const auto run = [&](std::uint64_t seed) {
    FaultInjector inj(policy, seed);
    std::vector<LinkFault> out;
    for (int i = 0; i < 200; ++i)
      out.push_back(inj.on_send(FaultInjector::key(i % 4, (i + 1) % 4)));
    return out;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay = std::chrono::microseconds{100};
  policy.max_delay = std::chrono::microseconds{1000};
  policy.jitter = 0.0;  // exact values
  EXPECT_EQ(policy.backoff(1, 42).count(), 0);    // first attempt: no wait
  EXPECT_EQ(policy.backoff(2, 42).count(), 100);  // base
  EXPECT_EQ(policy.backoff(3, 42).count(), 200);
  EXPECT_EQ(policy.backoff(4, 42).count(), 400);
  EXPECT_EQ(policy.backoff(5, 42).count(), 800);
  EXPECT_EQ(policy.backoff(6, 42).count(), 1000);  // capped
  EXPECT_EQ(policy.backoff(60, 42).count(), 1000);  // no overflow
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.base_delay = std::chrono::microseconds{1000};
  policy.max_delay = std::chrono::microseconds{100000};
  policy.jitter = 0.5;
  for (std::size_t attempt = 2; attempt < 8; ++attempt) {
    const auto a = policy.backoff(attempt, 7);
    const auto b = policy.backoff(attempt, 7);
    EXPECT_EQ(a, b);  // same salt -> same jitter
    const std::int64_t full = 1000ll << (attempt - 2);
    EXPECT_GE(a.count(), full / 2);
    EXPECT_LE(a.count(), full);
  }
  // Different salts give different delays somewhere in the range.
  bool any_diff = false;
  for (std::uint64_t salt = 0; salt < 8; ++salt)
    any_diff |= policy.backoff(3, salt) != policy.backoff(3, salt + 100);
  EXPECT_TRUE(any_diff);
}

TEST(RetryPolicy, WithRetriesSucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int calls = 0;
  const bool ok = with_retries(policy, stats, 1, [&]() {
    ++calls;
    return calls < 3 ? Attempt::Retry : Attempt::Success;
  });
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.exhausted, 0u);
  EXPECT_GT(stats.backoff_total.count(), 0);
}

TEST(RetryPolicy, WithRetriesExhaustsBudget) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryStats stats;
  int calls = 0;
  const bool ok = with_retries(policy, stats, 2, [&]() {
    ++calls;
    return Attempt::Retry;
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(stats.exhausted, 1u);
}

TEST(RetryPolicy, WithRetriesAbortsImmediately) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  RetryStats stats;
  int calls = 0;
  const bool ok = with_retries(policy, stats, 3, [&]() {
    ++calls;
    return Attempt::Abort;
  });
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.exhausted, 0u);  // abort is permanent, not exhaustion
}

}  // namespace
}  // namespace tvmec::storage
