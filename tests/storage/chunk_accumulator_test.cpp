#include "storage/chunk_accumulator.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace tvmec::storage {
namespace {

TEST(ChunkAccumulator, Construction) {
  ChunkAccumulator acc(4, 1024);
  EXPECT_EQ(acc.k(), 4u);
  EXPECT_EQ(acc.chunk_size(), 1024u);
  EXPECT_EQ(acc.chunks_received(), 0u);
  EXPECT_FALSE(acc.ready());
  EXPECT_THROW(ChunkAccumulator(0, 1024), std::invalid_argument);
  EXPECT_THROW(ChunkAccumulator(4, 0), std::invalid_argument);
}

TEST(ChunkAccumulator, RegionUnavailableUntilReady) {
  ChunkAccumulator acc(2, 64);
  EXPECT_THROW(acc.data(), std::logic_error);
  const auto chunk = testutil::random_vector(64, 1);
  acc.add_chunk(0, chunk);
  EXPECT_THROW(acc.data(), std::logic_error);
  acc.add_chunk(1, chunk);
  EXPECT_TRUE(acc.ready());
  EXPECT_NO_THROW(acc.data());
}

TEST(ChunkAccumulator, ChunksLandAtCorrectOffsets) {
  ChunkAccumulator acc(3, 32);
  const auto c0 = testutil::random_vector(32, 10);
  const auto c1 = testutil::random_vector(32, 11);
  const auto c2 = testutil::random_vector(32, 12);
  // Out-of-order arrival, as §5 anticipates.
  acc.add_chunk(2, c2);
  acc.add_chunk(0, c0);
  acc.add_chunk(1, c1);
  const auto region = acc.data();
  EXPECT_TRUE(std::equal(c0.begin(), c0.end(), region.begin()));
  EXPECT_TRUE(std::equal(c1.begin(), c1.end(), region.begin() + 32));
  EXPECT_TRUE(std::equal(c2.begin(), c2.end(), region.begin() + 64));
}

TEST(ChunkAccumulator, ShortChunkZeroPadded) {
  ChunkAccumulator acc(1, 16);
  const std::vector<std::uint8_t> shorty = {1, 2, 3};
  acc.add_chunk(0, shorty);
  const auto region = acc.data();
  EXPECT_EQ(region[0], 1);
  EXPECT_EQ(region[2], 3);
  for (std::size_t i = 3; i < 16; ++i) EXPECT_EQ(region[i], 0);
}

TEST(ChunkAccumulator, Validation) {
  ChunkAccumulator acc(2, 16);
  const auto chunk = testutil::random_vector(16, 2);
  EXPECT_THROW(acc.add_chunk(2, chunk), std::invalid_argument);
  const auto oversize = testutil::random_vector(17, 3);
  EXPECT_THROW(acc.add_chunk(0, oversize), std::invalid_argument);
  acc.add_chunk(0, chunk);
  EXPECT_THROW(acc.add_chunk(0, chunk), std::invalid_argument);
}

TEST(ChunkAccumulator, ResetAllowsReuse) {
  ChunkAccumulator acc(2, 16);
  const auto chunk = testutil::random_vector(16, 4);
  acc.add_chunk(0, chunk);
  acc.add_chunk(1, chunk);
  EXPECT_TRUE(acc.ready());
  acc.reset();
  EXPECT_FALSE(acc.ready());
  EXPECT_EQ(acc.chunks_received(), 0u);
  EXPECT_NO_THROW(acc.add_chunk(0, chunk));
}

TEST(ChunkAccumulator, RegionIsWordAligned) {
  ChunkAccumulator acc(1, 8);
  acc.add_chunk(0, testutil::random_vector(8, 5));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(acc.data().data()) % 64, 0u);
}

}  // namespace
}  // namespace tvmec::storage
