#include "storage/crc32c.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>

#include "../test_util.h"

namespace tvmec::storage {
namespace {

std::uint32_t crc_of(std::string_view s) {
  return crc32c({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

/// Published CRC-32C test vectors (RFC 3720 / kernel crypto testmgr).
TEST(Crc32c, KnownVectors) {
  EXPECT_EQ(crc32c({}), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xC1D04330u);
  EXPECT_EQ(crc_of("abc"), 0x364B3FB7u);
  EXPECT_EQ(crc_of("message digest"), 0x02BD79D0u);
  EXPECT_EQ(crc_of("123456789"), 0xE3069283u);
  EXPECT_EQ(crc_of("abcdefghijklmnopqrstuvwxyz"), 0x9EE6EF25u);
}

TEST(Crc32c, AllZeros32Bytes) {
  // The RFC 3720 B.4 example: 32 bytes of zeros -> 0x8A9136AA.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const auto data = testutil::random_vector(1000, 1);
  const std::uint32_t whole = crc32c(data);
  for (const std::size_t split : {0u, 1u, 7u, 8u, 500u, 999u, 1000u}) {
    std::uint32_t crc = 0;
    crc = crc32c_extend(crc, std::span<const std::uint8_t>(data).first(split));
    crc = crc32c_extend(crc,
                        std::span<const std::uint8_t>(data).subspan(split));
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  auto data = testutil::random_vector(256, 2);
  const std::uint32_t clean = crc32c(data);
  for (const std::size_t byte : {0u, 100u, 255u}) {
    for (const int bit : {0, 3, 7}) {
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc32c(data), clean);
      data[byte] ^= static_cast<std::uint8_t>(1 << bit);
    }
  }
  EXPECT_EQ(crc32c(data), clean);
}

TEST(Crc32c, UnalignedBuffersMatchAligned) {
  const auto aligned = testutil::random_bytes(512, 3);
  std::vector<std::uint8_t> shifted(513);
  std::memcpy(shifted.data() + 1, aligned.data(), 512);
  EXPECT_EQ(crc32c(aligned.span()),
            crc32c(std::span<const std::uint8_t>(shifted).subspan(1)));
}

}  // namespace
}  // namespace tvmec::storage
