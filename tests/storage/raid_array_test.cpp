#include "storage/raid_array.h"

#include <gtest/gtest.h>

#include <random>

#include "../test_util.h"

namespace tvmec::storage {
namespace {

constexpr std::size_t kBlock = 512;

RaidArray make_array(std::size_t stripes = 16) {
  return RaidArray(ec::CodeParams{4, 2, 8}, kBlock, stripes);
}

TEST(RaidArray, Geometry) {
  RaidArray raid = make_array(10);
  EXPECT_EQ(raid.num_devices(), 6u);
  EXPECT_EQ(raid.capacity_blocks(), 40u);
  EXPECT_EQ(raid.block_size(), kBlock);
  EXPECT_THROW(RaidArray(ec::CodeParams{4, 2, 8}, 100, 4),
               std::invalid_argument);
  EXPECT_THROW(RaidArray(ec::CodeParams{4, 2, 8}, kBlock, 0),
               std::invalid_argument);
}

TEST(RaidArray, FreshArrayReadsZeros) {
  RaidArray raid = make_array();
  const auto block = raid.read_block(7);
  EXPECT_EQ(block.size(), kBlock);
  for (const auto b : block) EXPECT_EQ(b, 0);
  EXPECT_EQ(raid.verify(), 0u);
}

TEST(RaidArray, WriteReadRoundTrip) {
  RaidArray raid = make_array();
  const auto data = testutil::random_vector(kBlock, 1);
  raid.write_block(5, data);
  EXPECT_EQ(raid.read_block(5), data);
  EXPECT_EQ(raid.verify(), 0u);
  // The healthy-path write must have used the small-write patch.
  EXPECT_EQ(raid.stats().small_write_patches, 1u);
  EXPECT_EQ(raid.stats().full_stripe_writes, 0u);
}

TEST(RaidArray, Validation) {
  RaidArray raid = make_array();
  const auto data = testutil::random_vector(kBlock, 2);
  EXPECT_THROW(raid.write_block(1000, data), std::invalid_argument);
  EXPECT_THROW(raid.read_block(1000), std::invalid_argument);
  const auto shorty = testutil::random_vector(kBlock / 2, 3);
  EXPECT_THROW(raid.write_block(0, shorty), std::invalid_argument);
  EXPECT_THROW(raid.fail_device(99), std::invalid_argument);
}

TEST(RaidArray, DegradedReadAfterTwoFailures) {
  RaidArray raid = make_array();
  std::vector<std::vector<std::uint8_t>> written;
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba) {
    written.push_back(testutil::random_vector(kBlock, 100 + lba));
    raid.write_block(lba, written.back());
  }
  raid.fail_device(0);
  raid.fail_device(3);
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
    ASSERT_EQ(raid.read_block(lba), written[lba]) << "lba " << lba;
  EXPECT_GT(raid.stats().degraded_reads, 0u);
}

TEST(RaidArray, WritesWhileDegradedUseFullStripePath) {
  RaidArray raid = make_array();
  raid.fail_device(2);
  const auto data = testutil::random_vector(kBlock, 4);
  for (std::size_t lba = 0; lba < 8; ++lba) raid.write_block(lba, data);
  EXPECT_GT(raid.stats().full_stripe_writes, 0u);
  for (std::size_t lba = 0; lba < 8; ++lba)
    ASSERT_EQ(raid.read_block(lba), data);
}

TEST(RaidArray, RebuildRestoresRedundancy) {
  RaidArray raid = make_array();
  std::vector<std::vector<std::uint8_t>> written;
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba) {
    written.push_back(testutil::random_vector(kBlock, 200 + lba));
    raid.write_block(lba, written.back());
  }
  raid.fail_device(1);
  raid.replace_device(1);
  const std::size_t rebuilt = raid.rebuild();
  EXPECT_GT(rebuilt, 0u);
  EXPECT_EQ(raid.verify(), 0u);

  // Redundancy is back: a different double failure is survivable.
  raid.fail_device(0);
  raid.fail_device(4);
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
    ASSERT_EQ(raid.read_block(lba), written[lba]);
}

TEST(RaidArray, RebuildIsIdempotent) {
  RaidArray raid = make_array();
  raid.write_block(0, testutil::random_vector(kBlock, 5));
  raid.fail_device(2);
  raid.replace_device(2);
  EXPECT_GT(raid.rebuild(), 0u);
  EXPECT_EQ(raid.rebuild(), 0u);
}

TEST(RaidArray, TripleFailureIsFatalForReads) {
  RaidArray raid = make_array();
  raid.write_block(0, testutil::random_vector(kBlock, 6));
  raid.fail_device(0);
  raid.fail_device(1);
  raid.fail_device(2);
  // Some stripe placement puts >2 of these on one stripe -> unrecoverable.
  bool any_failure = false;
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba) {
    try {
      raid.read_block(lba);
    } catch (const std::runtime_error&) {
      any_failure = true;
    }
  }
  EXPECT_TRUE(any_failure);
}

struct RaidGeometry {
  ec::CodeParams params;
  std::size_t block;
};

class RaidGeometryTest : public ::testing::TestWithParam<RaidGeometry> {};

/// Full write-fail-rebuild cycle across code shapes and field sizes.
TEST_P(RaidGeometryTest, WriteFailRebuildCycle) {
  const auto& [params, block] = GetParam();
  RaidArray raid(params, block, 6);
  std::vector<std::vector<std::uint8_t>> written;
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba) {
    written.push_back(testutil::random_vector(block, 1000 + lba));
    raid.write_block(lba, written.back());
  }
  EXPECT_EQ(raid.verify(), 0u);

  // Fail r devices, read everything degraded, rebuild, verify.
  for (std::size_t d = 0; d < params.r; ++d) raid.fail_device(d);
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
    ASSERT_EQ(raid.read_block(lba), written[lba]);
  for (std::size_t d = 0; d < params.r; ++d) raid.replace_device(d);
  EXPECT_GT(raid.rebuild(), 0u);
  EXPECT_EQ(raid.verify(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RaidGeometryTest,
    ::testing::Values(RaidGeometry{{4, 2, 8}, 512},
                      RaidGeometry{{3, 3, 8}, 256},
                      RaidGeometry{{4, 1, 8}, 1024},   // RAID-5-like
                      RaidGeometry{{4, 2, 4}, 320},
                      RaidGeometry{{3, 2, 16}, 1024}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.params.k) + "r" +
             std::to_string(info.param.params.r) + "w" +
             std::to_string(info.param.params.w);
    });

/// Model-based fuzz: random writes, reads, failures, replacements and
/// rebuilds against a flat in-memory oracle. Invariant: while at most r
/// devices are failed, every read matches the oracle.
TEST(RaidArray, RandomizedWorkloadMatchesOracle) {
  const ec::CodeParams params{5, 2, 8};
  const std::size_t stripes = 12;
  RaidArray raid(params, kBlock, stripes);
  std::vector<std::vector<std::uint8_t>> oracle(
      raid.capacity_blocks(), std::vector<std::uint8_t>(kBlock, 0));

  std::mt19937_64 rng(2024);
  std::vector<std::size_t> failed;
  for (int step = 0; step < 600; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 50) {  // write
      const std::size_t lba = rng() % raid.capacity_blocks();
      std::vector<std::uint8_t> data(kBlock);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng());
      raid.write_block(lba, data);
      oracle[lba] = std::move(data);
    } else if (op < 85) {  // read
      const std::size_t lba = rng() % raid.capacity_blocks();
      ASSERT_EQ(raid.read_block(lba), oracle[lba]) << "step " << step;
    } else if (op < 93) {  // fail a device (keep <= r failed)
      if (failed.size() < params.r) {
        const std::size_t dev = rng() % raid.num_devices();
        if (!raid.device_failed(dev)) {
          raid.fail_device(dev);
          failed.push_back(dev);
        }
      }
    } else {  // replace + rebuild one failed device
      if (!failed.empty()) {
        const std::size_t dev = failed.back();
        failed.pop_back();
        raid.replace_device(dev);
        raid.rebuild();
      }
    }
  }
  // Drain failures and do a final full verification.
  for (const std::size_t dev : failed) raid.replace_device(dev);
  raid.rebuild();
  EXPECT_EQ(raid.verify(), 0u);
  for (std::size_t lba = 0; lba < raid.capacity_blocks(); ++lba)
    ASSERT_EQ(raid.read_block(lba), oracle[lba]);
}

}  // namespace
}  // namespace tvmec::storage
