#include "storage/checkpoint.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace tvmec::storage {
namespace {

constexpr std::size_t kCapacity = 1024;

CheckpointManager make_manager() {
  return CheckpointManager(ec::CodeParams{4, 2, 8}, kCapacity);
}

std::vector<std::vector<std::uint8_t>> make_shards(std::size_t k,
                                                   std::uint64_t seed,
                                                   std::size_t size = kCapacity) {
  std::vector<std::vector<std::uint8_t>> shards;
  for (std::size_t i = 0; i < k; ++i)
    shards.push_back(testutil::random_vector(size, seed + i));
  return shards;
}

std::vector<std::span<const std::uint8_t>> spans_of(
    const std::vector<std::vector<std::uint8_t>>& shards) {
  return {shards.begin(), shards.end()};
}

TEST(CheckpointManager, Construction) {
  EXPECT_NO_THROW(make_manager());
  // 1001 is not a multiple of w = 8, so it is not a valid shard size.
  EXPECT_THROW(CheckpointManager(ec::CodeParams{4, 2, 8}, 1001),
               std::invalid_argument);
}

TEST(CheckpointManager, VersionsIncrease) {
  CheckpointManager mgr = make_manager();
  EXPECT_FALSE(mgr.latest_version().has_value());
  const auto shards = make_shards(4, 1);
  const auto v1 = mgr.checkpoint(spans_of(shards));
  const auto v2 = mgr.checkpoint(spans_of(shards));
  EXPECT_LT(v1, v2);
  EXPECT_EQ(mgr.latest_version(), v2);
}

TEST(CheckpointManager, RecoverWithoutLossReturnsOriginal) {
  CheckpointManager mgr = make_manager();
  const auto shards = make_shards(4, 2);
  mgr.checkpoint(spans_of(shards));
  for (std::size_t rank = 0; rank < 4; ++rank)
    EXPECT_EQ(mgr.recover_shard(rank), shards[rank]);
}

TEST(CheckpointManager, RecoversLostRanks) {
  CheckpointManager mgr = make_manager();
  const auto shards = make_shards(4, 3);
  mgr.checkpoint(spans_of(shards));

  mgr.lose_rank(1);
  mgr.lose_rank(3);
  EXPECT_TRUE(mgr.rank_lost(1));
  EXPECT_FALSE(mgr.rank_lost(0));
  EXPECT_EQ(mgr.ranks_lost(), 2u);

  for (std::size_t rank = 0; rank < 4; ++rank)
    EXPECT_EQ(mgr.recover_shard(rank), shards[rank]) << "rank " << rank;
}

TEST(CheckpointManager, VariableShardSizesPreserved) {
  CheckpointManager mgr = make_manager();
  std::vector<std::vector<std::uint8_t>> shards;
  shards.push_back(testutil::random_vector(100, 10));
  shards.push_back(testutil::random_vector(kCapacity, 11));
  shards.push_back(testutil::random_vector(0, 12));  // empty shard
  shards.push_back(testutil::random_vector(777, 13));
  mgr.checkpoint(spans_of(shards));
  mgr.lose_rank(0);
  mgr.lose_rank(3);
  for (std::size_t rank = 0; rank < 4; ++rank)
    EXPECT_EQ(mgr.recover_shard(rank), shards[rank]) << "rank " << rank;
}

TEST(CheckpointManager, TooManyLossesThrow) {
  CheckpointManager mgr = make_manager();
  const auto shards = make_shards(4, 4);
  mgr.checkpoint(spans_of(shards));
  mgr.lose_rank(0);
  mgr.lose_rank(1);
  mgr.lose_rank(2);  // r = 2
  EXPECT_THROW(mgr.recover_shard(0), std::runtime_error);
}

TEST(CheckpointManager, Validation) {
  CheckpointManager mgr = make_manager();
  EXPECT_THROW(mgr.lose_rank(0), std::logic_error);  // nothing checkpointed
  EXPECT_THROW(mgr.recover_shard(0), std::logic_error);

  auto shards = make_shards(3, 5);  // wrong count
  EXPECT_THROW(mgr.checkpoint(spans_of(shards)), std::invalid_argument);

  auto oversize = make_shards(4, 6, kCapacity + 8);
  EXPECT_THROW(mgr.checkpoint(spans_of(oversize)), std::invalid_argument);

  mgr.checkpoint(spans_of(make_shards(4, 7)));
  EXPECT_THROW(mgr.lose_rank(4), std::invalid_argument);
  EXPECT_THROW(mgr.recover_shard(4), std::invalid_argument);
}

TEST(CheckpointManager, NewCheckpointResetsLosses) {
  CheckpointManager mgr = make_manager();
  const auto shards1 = make_shards(4, 8);
  mgr.checkpoint(spans_of(shards1));
  mgr.lose_rank(0);

  const auto shards2 = make_shards(4, 9);
  mgr.checkpoint(spans_of(shards2));
  EXPECT_EQ(mgr.ranks_lost(), 0u);
  EXPECT_EQ(mgr.recover_shard(0), shards2[0]);
}

TEST(CheckpointManager, RepeatedRecoveryIsStable) {
  CheckpointManager mgr = make_manager();
  const auto shards = make_shards(4, 10);
  mgr.checkpoint(spans_of(shards));
  mgr.lose_rank(2);
  EXPECT_EQ(mgr.recover_shard(2), shards[2]);
  EXPECT_EQ(mgr.recover_shard(2), shards[2]);
  EXPECT_EQ(mgr.recover_shard(1), shards[1]);
}

TEST(CheckpointManager, TooManyLossesMessageIsActionable) {
  CheckpointManager mgr = make_manager();
  mgr.checkpoint(spans_of(make_shards(4, 20)));
  mgr.lose_rank(0);
  mgr.lose_rank(1);
  mgr.lose_rank(2);  // r = 2
  try {
    mgr.recover_shard(3);
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("recover_shard"), std::string::npos) << msg;
    EXPECT_NE(msg.find("3"), std::string::npos) << msg;    // how many lost
    EXPECT_NE(msg.find("r=2"), std::string::npos) << msg;  // the tolerance
  }
}

TEST(CheckpointManager, RecoveryHealsTheStripeInPlace) {
  CheckpointManager mgr = make_manager();
  const auto shards = make_shards(4, 21);
  mgr.checkpoint(spans_of(shards));
  mgr.lose_rank(0);
  mgr.lose_rank(2);
  EXPECT_EQ(mgr.recover_shard(0), shards[0]);
  // The first recovery rebuilt *both* lost units and cleared the records.
  EXPECT_EQ(mgr.stats().units_repaired, 2u);
  EXPECT_EQ(mgr.ranks_lost(), 0u);
  EXPECT_FALSE(mgr.rank_lost(2));
  EXPECT_EQ(mgr.recover_shard(2), shards[2]);
  EXPECT_EQ(mgr.stats().units_repaired, 2u);  // nothing left to repair
}

TEST(CheckpointManager, RankCrashDuringCheckpointIsSurvivable) {
  CheckpointManager mgr = make_manager();
  FaultInjector inj;
  mgr.attach_fault_injector(&inj);
  inj.crash_node(1);  // rank 1's memory dies before the checkpoint lands
  const auto shards = make_shards(4, 22);
  mgr.checkpoint(spans_of(shards));
  // Its unit was never persisted, but recovery reconstructs it anyway.
  for (std::size_t rank = 0; rank < 4; ++rank)
    EXPECT_EQ(mgr.recover_shard(rank), shards[rank]) << "rank " << rank;
  EXPECT_GE(mgr.stats().units_repaired, 1u);
}

TEST(CheckpointManager, SilentShardCorruptionIsDetectedAndHealed) {
  CheckpointManager mgr = make_manager();
  // Seed chosen so 1-2 (<= r) of the 6 units get flipped this checkpoint.
  FaultInjector inj(FaultPolicy{}, 2);
  mgr.attach_fault_injector(&inj);
  FaultPolicy faults;
  faults.write_bit_flip = 0.25;
  inj.set_policy(faults);
  const auto shards = make_shards(4, 23);
  mgr.checkpoint(spans_of(shards));
  inj.set_policy(FaultPolicy{});
  ASSERT_GE(inj.stats().writes_corrupted, 1u);
  ASSERT_LE(inj.stats().writes_corrupted, 2u);

  for (std::size_t rank = 0; rank < 4; ++rank)
    EXPECT_EQ(mgr.recover_shard(rank), shards[rank]) << "rank " << rank;
  EXPECT_EQ(mgr.stats().corruptions_detected, inj.stats().writes_corrupted);
  EXPECT_EQ(mgr.stats().units_repaired, inj.stats().writes_corrupted);
}

TEST(CheckpointManager, TransientReadErrorsAreRetriedAway) {
  CheckpointManager mgr = make_manager();
  FaultInjector inj;
  mgr.attach_fault_injector(&inj);
  RetryPolicy retry;
  retry.max_attempts = 6;
  mgr.set_retry_policy(retry);
  const auto shards = make_shards(4, 24);
  mgr.checkpoint(spans_of(shards));

  FaultPolicy faults;
  // Short bursts against a generous attempt budget (and a seed checked to
  // stay under it): retries always win, reconstruction never triggers.
  faults.transient_read = 0.4;
  faults.transient_failures = 1;
  inj.set_policy(faults);
  for (std::size_t rank = 0; rank < 4; ++rank)
    EXPECT_EQ(mgr.recover_shard(rank), shards[rank]) << "rank " << rank;
  EXPECT_GT(mgr.retry_stats().retries, 0u);
  EXPECT_EQ(mgr.retry_stats().exhausted, 0u);
  EXPECT_EQ(mgr.stats().units_repaired, 0u);  // nothing was actually lost
}

}  // namespace
}  // namespace tvmec::storage
