// serve/tenant.h — weighted fair shares, deadline budgets, and the
// per-tenant counter identities.

#include "serve/tenant.h"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>

namespace tvmec::serve {
namespace {

using std::chrono::milliseconds;

RequestEvent submitted(TenantId t) {
  return {RequestEvent::Kind::Submitted, t, RequestStatus::Pending, false};
}
RequestEvent accepted(TenantId t) {
  return {RequestEvent::Kind::Accepted, t, RequestStatus::Pending, true};
}
RequestEvent completed(TenantId t, RequestStatus s, bool admitted) {
  return {RequestEvent::Kind::Completed, t, s, admitted};
}

TEST(TenantRegistry, SingleTenantOwnsWholeCapacity) {
  TenantRegistry reg(100);
  reg.set_policy(7, TenantPolicy{});
  EXPECT_EQ(reg.share(7), 100u);
}

TEST(TenantRegistry, SharesSplitByWeight) {
  TenantRegistry reg(100);
  reg.set_policy(1, {3.0, {}, 1});
  reg.set_policy(2, {1.0, {}, 1});
  EXPECT_EQ(reg.share(1), 75u);
  EXPECT_EQ(reg.share(2), 25u);
}

TEST(TenantRegistry, MinShareFloorsTinyWeights) {
  TenantRegistry reg(10);
  reg.set_policy(1, {1000.0, {}, 1});
  reg.set_policy(2, {0.001, {}, 3});
  EXPECT_EQ(reg.share(2), 3u);  // carved share ~0, floored
}

TEST(TenantRegistry, UnknownTenantReportsProspectiveShare) {
  TenantRegistry reg(100);
  reg.set_policy(1, {1.0, {}, 1});
  // Tenant 9 would join a 2-tenant pool at equal weight.
  EXPECT_EQ(reg.share(9), 50u);
}

TEST(TenantRegistry, InvalidPolicyThrows) {
  TenantRegistry reg(10);
  EXPECT_THROW(reg.set_policy(1, {0.0, {}, 1}), std::invalid_argument);
  EXPECT_THROW(reg.set_policy(1, {-1.0, {}, 1}), std::invalid_argument);
  EXPECT_THROW(TenantRegistry(0), std::invalid_argument);
}

TEST(TenantRegistry, AdmitRejectsAtShare) {
  TenantRegistry reg(4);
  reg.set_policy(1, {1.0, {}, 1});
  reg.set_policy(2, {1.0, {}, 1});  // each share = 2
  const auto now = Clock::now();
  Clock::time_point deadline = Clock::time_point::max();

  EXPECT_FALSE(reg.admit(1, now, &deadline).has_value());
  reg.observe(accepted(1));
  EXPECT_FALSE(reg.admit(1, now, &deadline).has_value());
  reg.observe(accepted(1));
  // Occupancy 2 == share 2: the next one bounces.
  const auto verdict = reg.admit(1, now, &deadline);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, RequestStatus::Overloaded);
  // Tenant 2 is unaffected by tenant 1's occupancy.
  EXPECT_FALSE(reg.admit(2, now, &deadline).has_value());

  // Completion releases occupancy; admission opens again.
  reg.observe(completed(1, RequestStatus::Ok, /*admitted=*/true));
  EXPECT_FALSE(reg.admit(1, now, &deadline).has_value());
}

TEST(TenantRegistry, RejectionsDoNotReleaseOccupancy) {
  TenantRegistry reg(2);
  reg.set_policy(1, {1.0, {}, 1});
  reg.observe(accepted(1));
  reg.observe(completed(1, RequestStatus::Overloaded, /*admitted=*/false));
  EXPECT_EQ(reg.counters(1).in_queue, 1u);
}

TEST(TenantRegistry, CompletionBeforeAcceptedIsOrderTolerant) {
  // A shard worker can pop, execute, and report a request before the
  // submitting thread's Accepted event is observed. The gauge dips to
  // -1 and the late Accepted restores it to 0; clamping the decrement
  // at 0 would instead strand the gauge at +1 forever.
  TenantRegistry reg(4);
  reg.observe(submitted(1));
  reg.observe(completed(1, RequestStatus::Ok, /*admitted=*/true));
  EXPECT_EQ(reg.counters(1).in_queue, -1);
  reg.observe(accepted(1));
  const TenantCounters c = reg.counters(1);
  EXPECT_EQ(c.in_queue, 0);
  EXPECT_TRUE(c.admission_balanced());
  EXPECT_TRUE(c.drained_balanced());
}

TEST(TenantRegistry, DeadlineBudgetClampsOnlyLooserDeadlines) {
  TenantRegistry reg(10);
  reg.set_policy(1, {1.0, milliseconds(10), 1});
  const auto now = Clock::now();

  Clock::time_point none = Clock::time_point::max();
  EXPECT_FALSE(reg.admit(1, now, &none).has_value());
  EXPECT_EQ(none, now + milliseconds(10));  // no deadline -> budget

  Clock::time_point loose = now + milliseconds(100);
  ASSERT_FALSE(reg.admit(1, now, &loose).has_value());
  EXPECT_EQ(loose, now + milliseconds(10));  // looser -> clamped

  Clock::time_point tight = now + milliseconds(1);
  ASSERT_FALSE(reg.admit(1, now, &tight).has_value());
  EXPECT_EQ(tight, now + milliseconds(1));  // tighter -> kept
}

TEST(TenantRegistry, NonEnforcingNeverRejectsNorClamps) {
  TenantRegistry reg(1, /*enforce=*/false);
  reg.set_policy(1, {1.0, milliseconds(1), 1});
  const auto now = Clock::now();
  for (int i = 0; i < 5; ++i) reg.observe(accepted(1));
  Clock::time_point deadline = Clock::time_point::max();
  EXPECT_FALSE(reg.admit(1, now, &deadline).has_value());
  EXPECT_EQ(deadline, Clock::time_point::max());
}

TEST(TenantCounters, IdentitiesHoldThroughLifecycle) {
  TenantRegistry reg(100);
  // Three admitted-and-served, one shed, one overloaded, one admitted
  // then abandoned at shutdown, one rejected at shutdown.
  for (int i = 0; i < 3; ++i) {
    reg.observe(submitted(1));
    reg.observe(accepted(1));
  }
  reg.observe(completed(1, RequestStatus::Ok, true));
  reg.observe(completed(1, RequestStatus::Expired, true));
  reg.observe(completed(1, RequestStatus::Failed, true));

  reg.observe(submitted(1));
  reg.observe(completed(1, RequestStatus::Shed, false));
  reg.observe(submitted(1));
  reg.observe(completed(1, RequestStatus::Overloaded, false));
  reg.observe(submitted(1));
  reg.observe(accepted(1));
  reg.observe(completed(1, RequestStatus::Shutdown, true));
  reg.observe(submitted(1));
  reg.observe(completed(1, RequestStatus::Shutdown, false));

  const TenantCounters c = reg.counters(1);
  EXPECT_EQ(c.submitted, 7u);
  EXPECT_EQ(c.accepted, 4u);
  EXPECT_EQ(c.rejected_shed, 1u);
  EXPECT_EQ(c.rejected_overload, 1u);
  EXPECT_EQ(c.rejected_shutdown, 1u);
  EXPECT_EQ(c.shutdown_drained, 1u);
  EXPECT_TRUE(c.admission_balanced());
  EXPECT_TRUE(c.drained_balanced());
}

TEST(TenantCounters, AggregateSumsAllTenants) {
  TenantRegistry reg(100);
  for (TenantId t = 1; t <= 3; ++t) {
    reg.observe(submitted(t));
    reg.observe(accepted(t));
    reg.observe(completed(t, RequestStatus::Ok, true));
  }
  const TenantCounters agg = reg.aggregate();
  EXPECT_EQ(agg.submitted, 3u);
  EXPECT_EQ(agg.accepted, 3u);
  EXPECT_EQ(agg.completed_ok, 3u);
  EXPECT_TRUE(agg.admission_balanced());
  EXPECT_TRUE(agg.drained_balanced());
  EXPECT_EQ(reg.all().size(), 3u);
}

}  // namespace
}  // namespace tvmec::serve
