// serve/stats.h — the log-bucketed latency histogram and the shared
// sample-percentile helper the benches use.

#include "serve/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace tvmec::serve {
namespace {

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, BucketBoundsCoverEveryValue) {
  // For every recordable value: the bucket's upper bound is >= the value
  // and within the sub-bucket resolution (12.5% relative error).
  const auto check = [](std::uint64_t v) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kNumBuckets) << v;
    const std::uint64_t ub = LatencyHistogram::bucket_upper_bound(idx);
    EXPECT_GE(ub, v) << v;
    if (idx > 0) {
      const std::uint64_t prev =
          LatencyHistogram::bucket_upper_bound(idx - 1);
      EXPECT_LT(prev, v) << v;  // buckets partition the value space
      // Relative error bound: bucket width / lower edge <= 1/8.
      EXPECT_LE(ub - v, v / 8 + 1) << v;
    }
  };
  for (std::uint64_t v = 0; v < 4096; ++v) check(v);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) check(rng());
  check(UINT64_MAX);
}

TEST(LatencyHistogram, BucketIndexIsMonotone) {
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; ++v) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev) << v;
    prev = idx;
  }
}

TEST(LatencyHistogram, PercentileTracksExactWithinResolution) {
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  std::mt19937_64 rng(42);
  for (int i = 0; i < 5000; ++i) {
    // Mixture: mostly microsecond-scale with a heavy tail.
    const std::uint64_t v =
        (rng() % 10 == 0) ? 1'000'000 + rng() % 50'000'000 : 500 + rng() % 5000;
    values.push_back(v);
    h.record(v);
  }
  ASSERT_EQ(h.count(), values.size());

  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(p / 100.0 * values.size())));
    const std::uint64_t exact = values[rank - 1];
    const std::uint64_t est = h.percentile(p);
    EXPECT_GE(est, exact) << p;  // upper-bound convention
    EXPECT_LE(est, exact + exact / 8 + 1) << p;
  }
  EXPECT_EQ(h.max(), values.back());
  EXPECT_EQ(h.min(), values.front());
  EXPECT_LE(h.percentile(100), h.max());
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  std::mt19937_64 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() % 1'000'000;
    (i % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (const double p : {10.0, 50.0, 99.0})
    EXPECT_EQ(a.percentile(p), combined.percentile(p));
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(SamplePercentile, MedianMatchesLegacyBenchConvention) {
  // The benches historically used nth_element at s.size()/2 (the upper
  // median); sample_median must reproduce that exactly so extracting the
  // helper changed no printed results.
  std::mt19937_64 rng(11);
  for (const std::size_t n : {1u, 2u, 5u, 9u, 10u, 101u}) {
    std::vector<double> s(n);
    for (auto& v : s) v = static_cast<double>(rng() % 1000);
    std::vector<double> legacy = s;
    std::nth_element(legacy.begin(), legacy.begin() + legacy.size() / 2,
                     legacy.end());
    const double want = legacy[legacy.size() / 2];
    std::vector<double> copy = s;
    EXPECT_EQ(sample_median(copy), want) << n;
  }
}

TEST(SamplePercentile, EdgeCases) {
  std::vector<double> empty;
  EXPECT_EQ(sample_percentile(empty, 50), 0.0);
  std::vector<double> one{7.0};
  EXPECT_EQ(sample_percentile(one, 0), 7.0);
  EXPECT_EQ(sample_percentile(one, 100), 7.0);
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_EQ(sample_percentile(v, 100), 5.0);
  std::vector<double> v2{5, 1, 4, 2, 3};
  EXPECT_EQ(sample_percentile(v2, 0), 1.0);
}

}  // namespace
}  // namespace tvmec::serve
