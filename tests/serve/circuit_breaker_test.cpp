// serve/circuit_breaker.h — the three-state breaker's transition table,
// driven with explicit timestamps so every path is deterministic.

#include "serve/circuit_breaker.h"

#include <gtest/gtest.h>

namespace tvmec::serve {
namespace {

using std::chrono::milliseconds;

Clock::time_point at(int ms) { return Clock::time_point{} + milliseconds(ms); }

BreakerPolicy policy(std::size_t failures = 3, std::size_t successes = 2,
                     milliseconds cooldown = milliseconds(100)) {
  BreakerPolicy p;
  p.failure_threshold = failures;
  p.success_threshold = successes;
  p.cooldown = cooldown;
  return p;
}

TEST(CircuitBreaker, StartsClosedAndAllowsPrimary) {
  CircuitBreaker b(policy());
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.allow_primary(at(0)), BreakerDecision::Primary);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker b(policy(3));
  for (int i = 0; i < 2; ++i) {
    b.record(BreakerDecision::Primary, false, at(i));
    EXPECT_EQ(b.state(), BreakerState::Closed);
  }
  b.record(BreakerDecision::Primary, false, at(2));
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.counters().trips, 1u);
  EXPECT_EQ(b.allow_primary(at(3)), BreakerDecision::Degrade);
}

TEST(CircuitBreaker, SuccessResetsFailureStreak) {
  CircuitBreaker b(policy(3));
  b.record(BreakerDecision::Primary, false, at(0));
  b.record(BreakerDecision::Primary, false, at(1));
  b.record(BreakerDecision::Primary, true, at(2));  // streak broken
  b.record(BreakerDecision::Primary, false, at(3));
  b.record(BreakerDecision::Primary, false, at(4));
  EXPECT_EQ(b.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, CooldownGatesHalfOpenProbe) {
  CircuitBreaker b(policy(1, 1, milliseconds(100)));
  b.record(BreakerDecision::Primary, false, at(0));
  ASSERT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.allow_primary(at(50)), BreakerDecision::Degrade);
  EXPECT_EQ(b.allow_primary(at(150)), BreakerDecision::Probe);
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  EXPECT_EQ(b.counters().probes, 1u);
}

TEST(CircuitBreaker, SingleProbeInFlight) {
  CircuitBreaker b(policy(1, 1, milliseconds(0)));
  b.record(BreakerDecision::Primary, false, at(0));
  EXPECT_EQ(b.allow_primary(at(1)), BreakerDecision::Probe);
  // A second batch while the probe is out must degrade, not double-probe.
  EXPECT_EQ(b.allow_primary(at(1)), BreakerDecision::Degrade);
  EXPECT_EQ(b.counters().probes, 1u);
}

TEST(CircuitBreaker, ProbeSuccessesClose) {
  CircuitBreaker b(policy(1, 2, milliseconds(0)));
  b.record(BreakerDecision::Primary, false, at(0));
  ASSERT_EQ(b.allow_primary(at(1)), BreakerDecision::Probe);
  b.record(BreakerDecision::Probe, true, at(2));
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);  // needs 2 successes
  ASSERT_EQ(b.allow_primary(at(3)), BreakerDecision::Probe);
  b.record(BreakerDecision::Probe, true, at(4));
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.counters().recoveries, 1u);
  EXPECT_EQ(b.allow_primary(at(5)), BreakerDecision::Primary);
}

TEST(CircuitBreaker, ProbeFailureReopens) {
  CircuitBreaker b(policy(1, 1, milliseconds(100)));
  b.record(BreakerDecision::Primary, false, at(0));
  ASSERT_EQ(b.allow_primary(at(150)), BreakerDecision::Probe);
  b.record(BreakerDecision::Probe, false, at(160));
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.counters().trips, 2u);
  // The cooldown restarts from the probe failure.
  EXPECT_EQ(b.allow_primary(at(200)), BreakerDecision::Degrade);
  EXPECT_EQ(b.allow_primary(at(300)), BreakerDecision::Probe);
}

TEST(CircuitBreaker, AbandonedProbeFreesTheSlot) {
  CircuitBreaker b(policy(1, 1, milliseconds(0)));
  b.record(BreakerDecision::Primary, false, at(0));
  ASSERT_EQ(b.allow_primary(at(1)), BreakerDecision::Probe);
  // The probe batch got cancelled: no verdict, but the slot must free or
  // the breaker degrades forever.
  b.abandon(BreakerDecision::Probe);
  EXPECT_EQ(b.state(), BreakerState::HalfOpen);
  EXPECT_EQ(b.allow_primary(at(2)), BreakerDecision::Probe);
}

TEST(CircuitBreaker, LatePrimaryVerdictAfterTripIsIgnored) {
  CircuitBreaker b(policy(1, 1, milliseconds(1000)));
  b.record(BreakerDecision::Primary, false, at(0));
  ASSERT_EQ(b.state(), BreakerState::Open);
  // A primary batch dispatched before the trip reports late: must not
  // reset or re-trip anything.
  b.record(BreakerDecision::Primary, true, at(1));
  b.record(BreakerDecision::Primary, false, at(2));
  EXPECT_EQ(b.state(), BreakerState::Open);
  EXPECT_EQ(b.counters().trips, 1u);
}

TEST(CircuitBreaker, DisabledBreakerNeverTrips) {
  BreakerPolicy p = policy(1, 1);
  p.enabled = false;
  CircuitBreaker b(p);
  for (int i = 0; i < 10; ++i) b.record(BreakerDecision::Primary, false, at(i));
  EXPECT_EQ(b.state(), BreakerState::Closed);
  EXPECT_EQ(b.allow_primary(at(11)), BreakerDecision::Primary);
  EXPECT_EQ(b.counters().trips, 0u);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(to_string(BreakerState::Closed), "closed");
  EXPECT_STREQ(to_string(BreakerState::Open), "open");
  EXPECT_STREQ(to_string(BreakerState::HalfOpen), "half-open");
}

}  // namespace
}  // namespace tvmec::serve
