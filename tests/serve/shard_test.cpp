// serve/shard.h — the sharded multi-tenant front: placement, byte
// correctness against the Codec oracle, per-tenant QoS and counter
// identities, bounded work stealing, shard-local pools, warm start.

#include "serve/shard.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/tvmec.h"

namespace tvmec::serve {
namespace {

using Bytes = tensor::AlignedBuffer<std::uint8_t>;
using std::chrono::milliseconds;

constexpr CodecKey kKey{4, 2, 8, ec::RsFamily::CauchyGood};
constexpr std::size_t kUnit = 512;

Bytes oracle_parity(const CodecKey& key, std::span<const std::uint8_t> data,
                    std::size_t unit) {
  core::Codec codec(ec::CodeParams{key.k, key.r, key.w}, key.family);
  Bytes parity(key.r * unit);
  codec.encode(data, parity.span(), unit);
  return parity;
}

/// Manual-pump front: deterministic admission and execution.
ShardedServiceConfig pump_config(std::size_t shards) {
  ShardedServiceConfig cfg;
  cfg.num_shards = shards;
  cfg.workers_per_shard = 0;
  cfg.shard.watchdog.enabled = false;
  return cfg;
}

/// A client id that hashes to the wanted shard.
std::uint64_t client_on_shard(std::size_t shard, std::size_t num_shards) {
  for (std::uint64_t c = 0;; ++c)
    if (ShardedEcService::shard_of(c, num_shards) == shard) return c;
}

TEST(ShardOf, StableInRangeAndSpreads) {
  bool hit[4] = {};
  for (std::uint64_t c = 0; c < 256; ++c) {
    const std::size_t s = ShardedEcService::shard_of(c, 4);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, ShardedEcService::shard_of(c, 4));  // stable
    hit[s] = true;
  }
  // 256 sequential ids must not all collapse onto a subset of shards.
  EXPECT_TRUE(hit[0] && hit[1] && hit[2] && hit[3]);
  EXPECT_EQ(ShardedEcService::shard_of(123, 1), 0u);
}

TEST(ShardedEcService, EncodeMatchesOracleAcrossShards) {
  ShardedEcService front(pump_config(3));
  constexpr int kClients = 9;
  std::vector<Bytes> data, parity;
  std::vector<EcFuture> futures;
  for (int c = 0; c < kClients; ++c) {
    data.push_back(testutil::random_bytes(kKey.k * kUnit, 100 + c));
    parity.emplace_back(kKey.r * kUnit);
  }
  for (int c = 0; c < kClients; ++c)
    futures.push_back(front.submit_encode(/*tenant=*/1, /*client=*/c, kKey,
                                          data[c].span(), parity[c].span(),
                                          kUnit));
  front.run_pending();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(futures[c].wait().status, RequestStatus::Ok);
    const Bytes want = oracle_parity(kKey, data[c].span(), kUnit);
    EXPECT_EQ(std::memcmp(parity[c].data(), want.data(), want.size()), 0)
        << "client " << c;
  }
}

TEST(ShardedEcService, DecodeRepairsAcrossShards) {
  ShardedEcService front(pump_config(2));
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 7);
  Bytes stripe(kKey.n() * kUnit);
  std::memcpy(stripe.data(), data.data(), data.size());
  const Bytes parity = oracle_parity(kKey, data.span(), kUnit);
  std::memcpy(stripe.data() + kKey.k * kUnit, parity.data(), parity.size());
  const Bytes want = stripe;
  const std::vector<std::size_t> erased{0, 5};
  for (const std::size_t id : erased)
    std::memset(stripe.data() + id * kUnit, 0xAB, kUnit);

  EcFuture f = front.submit_decode(2, /*client=*/42, kKey, stripe.span(),
                                   erased, kUnit);
  front.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  EXPECT_EQ(std::memcmp(stripe.data(), want.data(), want.size()), 0);
}

TEST(ShardedEcService, ClientAffinityLandsOnOneShard) {
  ShardedEcService front(pump_config(4));
  const std::uint64_t client = 77;
  const std::size_t home = ShardedEcService::shard_of(client, 4);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 3);
  std::vector<Bytes> parity;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 5; ++i) parity.emplace_back(kKey.r * kUnit);
  for (int i = 0; i < 5; ++i)
    futures.push_back(front.submit_encode(1, client, kKey, data.span(),
                                          parity[i].span(), kUnit));
  front.run_pending();
  for (auto& f : futures) EXPECT_EQ(f.wait().status, RequestStatus::Ok);

  const ShardedStatsSnapshot s = front.stats();
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(s.shards[i].stats.submitted, i == home ? 5u : 0u)
        << "shard " << i;
}

TEST(ShardedEcService, PerTenantCountersBalanceAndMatchAggregate) {
  ShardedServiceConfig cfg = pump_config(2);
  cfg.shard.batch.queue_capacity = 2;  // force some Overloaded rejections
  ShardedEcService front(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 4);
  std::vector<Bytes> parity;
  std::vector<EcFuture> futures;
  constexpr int kPerTenant = 6;
  for (int i = 0; i < 2 * kPerTenant; ++i) parity.emplace_back(kKey.r * kUnit);
  for (TenantId t = 1; t <= 2; ++t)
    for (int i = 0; i < kPerTenant; ++i)
      futures.push_back(front.submit_encode(t, /*client=*/t * 31 + i, kKey,
                                            data.span(),
                                            parity[(t - 1) * kPerTenant + i]
                                                .span(),
                                            kUnit));
  front.run_pending();
  for (auto& f : futures) f.wait();
  front.shutdown(true);

  const ShardedStatsSnapshot s = front.stats();
  ASSERT_EQ(s.tenants.size(), 2u);
  for (const TenantCounters& c : s.tenants) {
    EXPECT_TRUE(c.admission_balanced()) << "tenant " << c.tenant;
    EXPECT_TRUE(c.drained_balanced()) << "tenant " << c.tenant;
    EXPECT_EQ(c.submitted, static_cast<std::uint64_t>(kPerTenant));
  }
  // Tenant totals == front-wide totals, bucket by bucket.
  EXPECT_EQ(s.tenant_aggregate.submitted, s.aggregate.submitted);
  EXPECT_EQ(s.tenant_aggregate.accepted, s.aggregate.accepted);
  EXPECT_EQ(s.tenant_aggregate.rejected_overload,
            s.aggregate.rejected_overload);
  EXPECT_EQ(s.tenant_aggregate.completed_ok, s.aggregate.completed_ok);
  EXPECT_TRUE(s.tenant_aggregate.admission_balanced());
  EXPECT_TRUE(s.tenant_aggregate.drained_balanced());
}

TEST(ShardedEcService, QosRejectsTenantOverItsShare) {
  // Capacity 2 shards x 4 = 8; weights 1:7 give tenant 1 a share of 1.
  ShardedServiceConfig cfg = pump_config(2);
  cfg.shard.batch.queue_capacity = 4;
  cfg.tenant_policies[1] = {1.0, {}, 1};
  cfg.tenant_policies[2] = {7.0, {}, 1};
  ShardedEcService front(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 5);
  Bytes p1(kKey.r * kUnit), p2(kKey.r * kUnit), p3(kKey.r * kUnit);

  EcFuture a = front.submit_encode(1, 1, kKey, data.span(), p1.span(), kUnit);
  // Occupancy 1 == share 1: rejected at the front, future ready at once.
  EcFuture b = front.submit_encode(1, 2, kKey, data.span(), p2.span(), kUnit);
  ASSERT_TRUE(b.ready());
  EXPECT_EQ(b.wait().status, RequestStatus::Overloaded);
  EXPECT_EQ(b.wait().batch_size, 0u);
  // The big tenant still gets in.
  EcFuture c = front.submit_encode(2, 3, kKey, data.span(), p3.span(), kUnit);
  front.run_pending();
  EXPECT_EQ(a.wait().status, RequestStatus::Ok);
  EXPECT_EQ(c.wait().status, RequestStatus::Ok);

  const ShardedStatsSnapshot s = front.stats();
  EXPECT_EQ(s.qos_rejected, 1u);
  const TenantCounters t1 = front.tenants().counters(1);
  EXPECT_EQ(t1.rejected_overload, 1u);
  EXPECT_TRUE(t1.admission_balanced());
  // Front-level rejections fold into the aggregate identity.
  EXPECT_EQ(s.aggregate.submitted,
            s.aggregate.accepted + s.aggregate.rejected_overload +
                s.aggregate.rejected_shed + s.aggregate.rejected_shutdown);
}

TEST(ShardedEcService, DeadlineBudgetExpiresSlowTenants) {
  ShardedServiceConfig cfg = pump_config(1);
  cfg.tenant_policies[1] = {1.0, std::chrono::nanoseconds(1), 4};
  ShardedEcService front(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 6);
  Bytes parity(kKey.r * kUnit);
  // A 1 ns budget: the request's unbounded deadline is clamped to
  // effectively "now" at admission and has certainly lapsed by the time
  // the pump forms the batch, so it expires at formation.
  EcFuture f = front.submit_encode(1, 0, kKey, data.span(), parity.span(),
                                   kUnit);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  front.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Expired);
  EXPECT_TRUE(front.tenants().counters(1).admission_balanced());
}

TEST(ShardedEcService, StealForDrainsHotNeighbor) {
  ShardedServiceConfig cfg = pump_config(2);
  cfg.steal.min_victim_wait = std::chrono::nanoseconds(0);
  cfg.steal.max_batches = 2;
  cfg.shard.batch.max_batch_requests = 1;  // one request per batch
  ShardedEcService front(cfg);
  const std::uint64_t hot_client = client_on_shard(1, 2);
  const std::size_t thief = 0;

  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 8);
  std::vector<Bytes> parity;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 4; ++i) parity.emplace_back(kKey.r * kUnit);
  for (int i = 0; i < 4; ++i)
    futures.push_back(front.submit_encode(1, hot_client, kKey, data.span(),
                                          parity[i].span(), kUnit));
  ASSERT_EQ(front.shard(1).pending(), 4u);
  ASSERT_EQ(front.shard(thief).pending(), 0u);

  // The thief takes at most max_batches batches (1 request each here).
  EXPECT_EQ(front.steal_for(thief), 2u);
  EXPECT_EQ(front.shard(1).pending(), 2u);
  const ShardedStatsSnapshot s = front.stats();
  EXPECT_EQ(s.steal_scans, 1u);
  EXPECT_EQ(s.steal_batches, 2u);
  EXPECT_EQ(s.steal_requests, 2u);

  front.run_pending();
  for (auto& f : futures) EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);
  for (const Bytes& p : parity)
    EXPECT_EQ(std::memcmp(p.data(), want.data(), want.size()), 0);
}

TEST(ShardedEcService, StealRespectsVictimFloor) {
  ShardedServiceConfig cfg = pump_config(2);
  // Victim EWMA is 0 until its first pop; an absolute floor above 0
  // therefore disqualifies it.
  cfg.steal.min_victim_wait = std::chrono::hours(1);
  ShardedEcService front(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 9);
  Bytes parity(kKey.r * kUnit);
  EcFuture f = front.submit_encode(1, client_on_shard(1, 2), kKey,
                                   data.span(), parity.span(), kUnit);
  EXPECT_EQ(front.steal_for(0), 0u);
  EXPECT_EQ(front.stats().steal_scans, 0u);
  front.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);
}

TEST(ShardedEcService, WorkersServeSkewedLoadWithStealing) {
  ShardedServiceConfig cfg;
  cfg.num_shards = 2;
  cfg.workers_per_shard = 1;
  cfg.shard.watchdog.enabled = false;
  cfg.steal.min_victim_wait = std::chrono::nanoseconds(0);
  cfg.steal.wait_ratio = 1.0;
  ShardedEcService front(cfg);
  const std::uint64_t hot_client = client_on_shard(0, 2);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 10);
  std::vector<Bytes> parity;
  std::vector<EcFuture> futures;
  constexpr int kRequests = 64;
  for (int i = 0; i < kRequests; ++i) parity.emplace_back(kKey.r * kUnit);
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(front.submit_encode(1, hot_client, kKey, data.span(),
                                          parity[i].span(), kUnit));
  for (auto& f : futures) EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  front.shutdown(true);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);
  for (const Bytes& p : parity)
    EXPECT_EQ(std::memcmp(p.data(), want.data(), want.size()), 0);
  const ShardedStatsSnapshot s = front.stats();
  EXPECT_EQ(s.aggregate.completed_ok, static_cast<std::uint64_t>(kRequests));
  EXPECT_TRUE(s.tenant_aggregate.admission_balanced());
  EXPECT_TRUE(s.tenant_aggregate.drained_balanced());
}

TEST(ShardedEcService, ShardLocalPoolsSurfaceInHealth) {
  ShardedServiceConfig cfg = pump_config(2);
  cfg.pool_bytes_per_shard = std::size_t{1} << 20;
  ShardedEcService front(cfg);
  ASSERT_NE(front.pool(0), nullptr);
  ASSERT_NE(front.pool(1), nullptr);
  EXPECT_NE(front.pool(0).get(), front.pool(1).get());  // shard-local
  { auto lease = front.pool(0)->acquire(4096); }
  auto lease2 = front.pool(0)->acquire(4096);  // recycled

  const ShardedHealthSnapshot h = front.health();
  EXPECT_EQ(h.state, HealthState::Ok);
  ASSERT_EQ(h.shards.size(), 2u);
  EXPECT_TRUE(h.shards[0].has_pool);
  EXPECT_EQ(h.shards[0].pool.acquires, 2u);
  EXPECT_EQ(h.shards[0].pool.pool_hits, 1u);
  EXPECT_EQ(h.shards[1].pool.acquires, 0u);

  const ShardedStatsSnapshot s = front.stats();
  EXPECT_TRUE(s.shards[0].has_pool);
  EXPECT_EQ(s.shards[0].pool.acquires, 2u);

  ShardedServiceConfig no_pool = pump_config(1);
  no_pool.pool_bytes_per_shard = 0;
  ShardedEcService bare(no_pool);
  EXPECT_EQ(bare.pool(0), nullptr);
  EXPECT_FALSE(bare.health().shards[0].has_pool);
}

TEST(ShardedEcService, ShutdownRejectsAndGoesUnhealthy) {
  ShardedEcService front(pump_config(2));
  front.shutdown(true);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 11);
  Bytes parity(kKey.r * kUnit);
  EcFuture f = front.submit_encode(5, 0, kKey, data.span(), parity.span(),
                                   kUnit);
  EXPECT_EQ(f.wait().status, RequestStatus::Shutdown);
  const TenantCounters t = front.tenants().counters(5);
  EXPECT_EQ(t.rejected_shutdown, 1u);
  EXPECT_TRUE(t.admission_balanced());
  EXPECT_EQ(front.health().state, HealthState::Unhealthy);
  front.shutdown(true);  // idempotent
}

TEST(ShardedEcService, MalformedSubmissionThrowsWithoutAccounting) {
  ShardedEcService front(pump_config(1));
  Bytes small(16);
  Bytes parity(kKey.r * kUnit);
  EXPECT_THROW(front.submit_encode(1, 0, kKey, small.span(), parity.span(),
                                   kUnit),
               std::invalid_argument);
  EXPECT_EQ(front.tenants().counters(1).submitted, 0u);
  EXPECT_EQ(front.stats().aggregate.submitted, 0u);
}

TEST(ShardedEcService, WarmStartInstallsCachedScheduleOnFirstSight) {
  const std::string log =
      ::testing::TempDir() + "/shard_warm_start_schedules.log";
  std::remove(log.c_str());
  {
    // A previous run's best-known schedule for kKey/kUnit's task shape.
    ScheduleCache cache;
    tune::TaskShape shape;
    shape.m = kKey.r * kKey.w;
    shape.n = kUnit / (8 * kKey.w);
    shape.k = kKey.k * kKey.w;
    tensor::Schedule best = default_service_schedule();
    best.tile_m = 2;
    cache.install(shape, {best, 1.0e9});
    cache.save(log);
  }

  ShardedServiceConfig cfg = pump_config(2);
  cfg.autotune.log_path = log;  // load-only warm start, tuner disabled
  ShardedEcService front(cfg);
  EXPECT_EQ(front.schedule_cache().size(), 1u);

  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 12);
  Bytes parity(kKey.r * kUnit);
  EcFuture f = front.submit_encode(1, 0, kKey, data.span(), parity.span(),
                                   kUnit);
  front.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);
  EXPECT_EQ(std::memcmp(parity.data(), want.data(), want.size()), 0);
  EXPECT_EQ(front.stats().autotune.warm_start_installs, 1u);

  // Second request of the same pair: no re-install.
  Bytes parity2(kKey.r * kUnit);
  EcFuture g = front.submit_encode(1, 1, kKey, data.span(), parity2.span(),
                                   kUnit);
  front.run_pending();
  EXPECT_EQ(g.wait().status, RequestStatus::Ok);
  EXPECT_EQ(front.stats().autotune.warm_start_installs, 1u);
}

}  // namespace
}  // namespace tvmec::serve
