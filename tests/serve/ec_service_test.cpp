// serve/ec_service.h — the batched asynchronous EC service: correctness
// against the Codec oracle, admission control, deadline enforcement,
// shutdown semantics, degenerate code shapes, and the pool-sharing
// thread-cap rule.

#include "serve/ec_service.h"

#include "serve/buffer_pool.h"
#include "tensor/kernel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/tvmec.h"
#include "tensor/cancel.h"
#include "tensor/threadpool.h"

namespace tvmec::serve {
namespace {

using Bytes = tensor::AlignedBuffer<std::uint8_t>;

constexpr CodecKey kKey{4, 2, 8, ec::RsFamily::CauchyGood};
constexpr std::size_t kUnit = 512;

Bytes oracle_parity(const CodecKey& key, std::span<const std::uint8_t> data,
                    std::size_t unit) {
  core::Codec codec(ec::CodeParams{key.k, key.r, key.w}, key.family);
  Bytes parity(key.r * unit);
  codec.encode(data, parity.span(), unit);
  return parity;
}

TEST(EcService, EncodeMatchesCodecOracle) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 1);
  Bytes parity(kKey.r * kUnit);
  EcFuture f = service.submit_encode(kKey, data.span(), parity.span(), kUnit);
  const EcResult& r = f.wait();
  EXPECT_EQ(r.status, RequestStatus::Ok);
  EXPECT_EQ(r.batch_size, 1u);
  EXPECT_GE(r.total.count(), 0);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);
  EXPECT_EQ(std::memcmp(parity.data(), want.data(), want.size()), 0);
}

TEST(EcService, DecodeRepairsStripeInPlace) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 2);
  Bytes stripe(kKey.n() * kUnit);
  std::memcpy(stripe.data(), data.data(), data.size());
  const Bytes parity = oracle_parity(kKey, data.span(), kUnit);
  std::memcpy(stripe.data() + kKey.k * kUnit, parity.data(), parity.size());
  const Bytes want = stripe;

  const std::vector<std::size_t> erased{1, 4};
  for (const std::size_t id : erased)
    std::memset(stripe.data() + id * kUnit, 0xEE, kUnit);
  EcFuture f = service.submit_decode(kKey, stripe.span(), erased, kUnit);
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  EXPECT_EQ(std::memcmp(stripe.data(), want.data(), want.size()), 0);
}

TEST(EcService, ConcurrentClientsAllServedCorrectly) {
  ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.batch.max_batch_requests = 8;
  EcService service(cfg);
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const Bytes data =
          testutil::random_bytes(kKey.k * kUnit, 100 + static_cast<unsigned>(c));
      const Bytes want = oracle_parity(kKey, data.span(), kUnit);
      Bytes parity(kKey.r * kUnit);
      for (int i = 0; i < kPerClient; ++i) {
        EcFuture f =
            service.submit_encode(kKey, data.span(), parity.span(), kUnit);
        ASSERT_EQ(f.wait().status, RequestStatus::Ok);
        ASSERT_EQ(std::memcmp(parity.data(), want.data(), want.size()), 0);
      }
    });
  }
  for (auto& t : clients) t.join();
  service.shutdown();
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.completed_ok, kClients * kPerClient);
  EXPECT_EQ(s.submitted, s.accepted);
  EXPECT_EQ(s.accepted, s.completed_ok + s.expired + s.failed);
  EXPECT_GE(s.batch_width.max(), 1u);
}

TEST(EcService, ManualPumpBackpressureIsDeterministic) {
  ServiceConfig cfg;
  cfg.num_workers = 0;  // nothing consumes while we submit
  cfg.batch.queue_capacity = 3;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 3);
  std::vector<Bytes> parities;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 5; ++i) {
    parities.emplace_back(kKey.r * kUnit);
    futures.push_back(
        service.submit_encode(kKey, data.span(), parities.back().span(), kUnit));
  }
  // Exactly the first `capacity` submissions are accepted.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(futures[i].ready()) << i;
  for (int i = 3; i < 5; ++i) {
    ASSERT_TRUE(futures[i].ready()) << i;
    EXPECT_EQ(futures[i].wait().status, RequestStatus::Overloaded) << i;
    EXPECT_EQ(futures[i].wait().batch_size, 0u);
  }
  EXPECT_EQ(service.run_pending(), 3u);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(futures[i].wait().status, RequestStatus::Ok);
    EXPECT_EQ(std::memcmp(parities[static_cast<std::size_t>(i)].data(),
                          want.data(), want.size()),
              0);
  }
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.submitted, 5u);
  EXPECT_EQ(s.accepted, 3u);
  EXPECT_EQ(s.rejected_overload, 2u);
}

TEST(EcService, ExpiredRequestNeverExecutesAndLeavesOutputUntouched) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 4);
  Bytes parity(kKey.r * kUnit);
  std::memset(parity.data(), 0xAB, parity.size());
  // Negative timeout: already expired at submission.
  EcFuture f = service.submit_encode(kKey, data.span(), parity.span(), kUnit,
                                     std::chrono::nanoseconds{-1});
  EXPECT_FALSE(f.ready());  // expiry is enforced at batch formation
  service.run_pending();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.wait().status, RequestStatus::Expired);
  EXPECT_EQ(f.wait().batch_size, 0u);
  for (std::size_t i = 0; i < parity.size(); ++i)
    ASSERT_EQ(parity[i], 0xAB) << i;
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.expired, 1u);
  // The whole batch expired before work: an empty flush, not a batch.
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.empty_flushes, 1u);
}

TEST(EcService, MixedExpiryExecutesOnlyLiveRequests) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 5);
  Bytes p_live(kKey.r * kUnit), p_dead(kKey.r * kUnit);
  EcFuture live =
      service.submit_encode(kKey, data.span(), p_live.span(), kUnit);
  EcFuture dead = service.submit_encode(kKey, data.span(), p_dead.span(),
                                        kUnit, std::chrono::nanoseconds{-1});
  service.run_pending();
  EXPECT_EQ(live.wait().status, RequestStatus::Ok);
  EXPECT_EQ(live.wait().batch_size, 1u);  // the expired one never counted
  EXPECT_EQ(dead.wait().status, RequestStatus::Expired);
}

TEST(EcService, DegenerateShapes) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  // k == 1, r == 0: striping only — encode produces no parity.
  const CodecKey trivial{1, 0, 8, ec::RsFamily::CauchyGood};
  const Bytes data = testutil::random_bytes(kUnit, 6);
  EcFuture f = service.submit_encode(trivial, data.span(), {}, kUnit);
  service.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);

  // k == 1, r == 2 round trip.
  const CodecKey tiny{1, 2, 8, ec::RsFamily::CauchyGood};
  Bytes stripe(3 * kUnit);
  std::memcpy(stripe.data(), data.data(), kUnit);
  const Bytes parity = oracle_parity(tiny, data.span(), kUnit);
  std::memcpy(stripe.data() + kUnit, parity.data(), parity.size());
  std::memset(stripe.data(), 0xEE, kUnit);
  const std::vector<std::size_t> erased{0};
  EcFuture g = service.submit_decode(tiny, stripe.span(), erased, kUnit);
  service.run_pending();
  EXPECT_EQ(g.wait().status, RequestStatus::Ok);
  EXPECT_EQ(std::memcmp(stripe.data(), data.data(), kUnit), 0);
}

TEST(EcService, UnrecoverablePatternCompletesFailed) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  Bytes stripe(kKey.n() * kUnit);
  const std::vector<std::size_t> erased{0, 1, 2};  // > r = 2 distinct
  EcFuture f = service.submit_decode(kKey, stripe.span(), erased, kUnit);
  service.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Failed);
  EXPECT_FALSE(f.wait().error.empty());
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(EcService, InvalidArgumentsThrowAtSubmit) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  Bytes data(kKey.k * kUnit), parity(kKey.r * kUnit), stripe(kKey.n() * kUnit);
  // Wrong span sizes.
  EXPECT_THROW(service.submit_encode(kKey, data.span().subspan(1),
                                     parity.span(), kUnit),
               std::invalid_argument);
  // Bad unit size (not a multiple of w).
  EXPECT_THROW(service.submit_encode(kKey, data.span().first(kKey.k * 3),
                                     parity.span().first(kKey.r * 3), 3),
               std::invalid_argument);
  // Out-of-range erasure id.
  const std::vector<std::size_t> bad{kKey.n()};
  EXPECT_THROW(service.submit_decode(kKey, stripe.span(), bad, kUnit),
               std::invalid_argument);
  // Nothing was admitted.
  EXPECT_EQ(service.stats().accepted, 0u);
}

TEST(EcService, ShutdownDrainCompletesInFlightRequests) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 7);
  std::vector<Bytes> parities;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 32; ++i) {
    parities.emplace_back(kKey.r * kUnit);
    futures.push_back(
        service.submit_encode(kKey, data.span(), parities.back().span(), kUnit));
  }
  service.shutdown(/*drain=*/true);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].ready()) << i;
    EXPECT_EQ(futures[i].wait().status, RequestStatus::Ok) << i;
    EXPECT_EQ(std::memcmp(parities[i].data(), want.data(), want.size()), 0);
  }
}

TEST(EcService, ShutdownWithoutDrainCompletesQueuedAsShutdown) {
  ServiceConfig cfg;
  cfg.num_workers = 0;  // queue everything, execute nothing
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 8);
  std::vector<Bytes> parities;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 8; ++i) {
    parities.emplace_back(kKey.r * kUnit);
    futures.push_back(
        service.submit_encode(kKey, data.span(), parities.back().span(), kUnit));
  }
  service.shutdown(/*drain=*/false);
  for (auto& f : futures) {
    ASSERT_TRUE(f.ready());
    EXPECT_EQ(f.wait().status, RequestStatus::Shutdown);
  }
  const ServeStatsSnapshot s = service.stats();
  // These requests were *accepted* and then abandoned: they must land in
  // the drained bucket, not rejected_shutdown, or the identity
  // accepted == ok + expired + failed + cancelled + drained breaks.
  EXPECT_EQ(s.shutdown_drained, 8u);
  EXPECT_EQ(s.rejected_shutdown, 0u);
  EXPECT_EQ(s.accepted, 8u);
  EXPECT_EQ(s.completed_ok, 0u);
}

TEST(EcService, SubmitAfterShutdownCompletesAsShutdownImmediately) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  EcService service(cfg);
  service.shutdown();
  Bytes data(kKey.k * kUnit), parity(kKey.r * kUnit);
  EcFuture f = service.submit_encode(kKey, data.span(), parity.span(), kUnit);
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.wait().status, RequestStatus::Shutdown);
  // Idempotent.
  service.shutdown();
  service.shutdown(false);
}

TEST(EcService, ConcurrentSubmitAndShutdownLeavesNoFutureHanging) {
  // Every submission must reach a terminal status even when shutdown
  // races the submitters — the TSan-watched path.
  ServiceConfig cfg;
  cfg.num_workers = 2;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 9);
  std::vector<std::thread> submitters;
  std::vector<std::vector<EcFuture>> futures(3);
  std::vector<std::vector<Bytes>> parities(3);
  for (int t = 0; t < 3; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        parities[t].emplace_back(kKey.r * kUnit);
        futures[t].push_back(service.submit_encode(
            kKey, data.span(), parities[t].back().span(), kUnit));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.shutdown(/*drain=*/true);
  for (auto& th : submitters) th.join();
  std::size_t terminal = 0;
  for (auto& vec : futures)
    for (auto& f : vec) {
      const EcResult& r = f.wait();  // must not hang
      EXPECT_NE(r.status, RequestStatus::Pending);
      ++terminal;
    }
  EXPECT_EQ(terminal, 300u);
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.submitted, 300u);
  EXPECT_EQ(s.submitted, s.accepted + s.rejected_overload + s.rejected_shed +
                             s.rejected_shutdown);
  EXPECT_EQ(s.accepted, s.completed_ok + s.expired + s.failed + s.cancelled +
                            s.shutdown_drained);
}

// Satellite 2 regression: the pool-sharing thread cap. Concurrent
// service workers must split the pool instead of each requesting its
// full width, and tiny batches must not fork at all.
TEST(EcService, EffectiveGemmThreadsCapsByWorkersAndWork) {
  constexpr std::size_t kWords = EcService::kMinWordsPerGemmThread;
  // Fair share: pool of 8 split across 2 workers -> at most 4 each.
  EXPECT_EQ(EcService::effective_gemm_threads(100 * kWords, 8, 2), 4);
  EXPECT_EQ(EcService::effective_gemm_threads(100 * kWords, 8, 4), 2);
  // Work-bound: a batch with fewer than 2 * kMinWordsPerGemmThread words
  // runs serial regardless of pool width.
  EXPECT_EQ(EcService::effective_gemm_threads(kWords - 1, 64, 1), 1);
  EXPECT_EQ(EcService::effective_gemm_threads(2 * kWords, 64, 1), 2);
  // Never zero, even on degenerate inputs.
  EXPECT_EQ(EcService::effective_gemm_threads(0, 0, 0), 1);
  // More workers than pool width still leaves one thread each.
  EXPECT_EQ(EcService::effective_gemm_threads(100 * kWords, 2, 8), 1);
  // Bounded by the kernel's schedule limit.
  EXPECT_LE(EcService::effective_gemm_threads(1 << 30, 1024, 1), 256);
}

TEST(EcService, GemmThreadCapIsObservedPerBatch) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.batch.max_batch_requests = 16;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 10);
  std::vector<Bytes> parities;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 16; ++i) {
    parities.emplace_back(kKey.r * kUnit);
    futures.push_back(
        service.submit_encode(kKey, data.span(), parities.back().span(), kUnit));
  }
  service.run_pending();
  const ServeStatsSnapshot s = service.stats();
  ASSERT_GE(s.gemm_threads.count(), 1u);
  // Every recorded batch honored the cap for a manual pump (1 "worker").
  const std::size_t batch_words =
      16 * (kKey.k + kKey.r) * kUnit / sizeof(std::uint64_t);
  const int cap = EcService::effective_gemm_threads(
      batch_words, tensor::ThreadPool::shared().size(), 1);
  EXPECT_LE(s.gemm_threads.max(), static_cast<std::uint64_t>(cap));
  // And the batch former actually coalesced.
  EXPECT_EQ(s.batch_width.max(), 16u);
  EXPECT_EQ(s.batches, 1u);
}

TEST(EcService, CancelledQueuedRequestNeverExecutes) {
  ServiceConfig cfg;
  cfg.num_workers = 0;  // manual pump: cancellation lands before formation
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 20);
  Bytes parity(kKey.r * kUnit);
  std::memset(parity.data(), 0xCD, parity.size());
  EcFuture f = service.submit_encode(kKey, data.span(), parity.span(), kUnit);
  f.cancel();
  EXPECT_TRUE(f.cancel_requested());
  service.run_pending();
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.wait().status, RequestStatus::Cancelled);
  // The kernel never touched the output.
  for (std::size_t i = 0; i < parity.size(); ++i)
    ASSERT_EQ(parity[i], 0xCD);
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.completed_ok, 0u);
  EXPECT_EQ(s.empty_flushes, 1u);  // the whole batch was dead
}

TEST(EcService, CallerSuppliedCancelTokenHonored) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 21);
  Bytes parity(kKey.r * kUnit);
  tensor::CancelSource source;
  EcRequest req;
  req.kind = RequestKind::Encode;
  req.key = kKey;
  req.unit_size = kUnit;
  req.in = data.span();
  req.out = parity.span();
  req.cancel = source.token();
  EcFuture f = service.submit_request(std::move(req));
  source.request_cancel();
  service.run_pending();
  EXPECT_EQ(f.wait().status, RequestStatus::Cancelled);
}

TEST(EcService, CancelAfterCompletionKeepsOriginalStatus) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 22);
  Bytes parity(kKey.r * kUnit);
  EcFuture f = service.submit_encode(kKey, data.span(), parity.span(), kUnit);
  service.run_pending();
  ASSERT_EQ(f.wait().status, RequestStatus::Ok);
  f.cancel();  // too late: must not rewrite history
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  EXPECT_EQ(service.stats().cancelled, 0u);
}

TEST(EcService, DeadlineSheddingRejectsDoomedRequests) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.batch.deadline_shedding = true;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 23);
  Bytes parity(kKey.r * kUnit);
  // Negative timeout = deadline already passed: with shedding on this is
  // rejected at admission (Shed), not queued to expire later.
  EcFuture doomed = service.submit_encode(kKey, data.span(), parity.span(),
                                          kUnit, std::chrono::seconds(-1));
  ASSERT_TRUE(doomed.ready());
  EXPECT_EQ(doomed.wait().status, RequestStatus::Shed);
  // A comfortable deadline sails through.
  Bytes parity2(kKey.r * kUnit);
  EcFuture fine = service.submit_encode(kKey, data.span(), parity2.span(),
                                        kUnit, std::chrono::hours(1));
  service.run_pending();
  EXPECT_EQ(fine.wait().status, RequestStatus::Ok);
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.rejected_shed, 1u);
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.accepted, 1u);
  EXPECT_EQ(s.submitted, s.accepted + s.rejected_overload + s.rejected_shed +
                             s.rejected_shutdown);
}

TEST(EcService, BreakerTripsToDegradedPathWithCorrectBytes) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.breaker.failure_threshold = 2;
  cfg.breaker.cooldown = std::chrono::hours(1);  // no recovery this test
  std::atomic<bool> inject{true};
  cfg.fault_injector = [&](RequestKind, const CodecKey&, std::size_t) {
    return inject.load();
  };
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 24);
  const Bytes want = oracle_parity(kKey, data.span(), kUnit);

  const auto one = [&](Bytes& parity) {
    EcFuture f =
        service.submit_encode(kKey, data.span(), parity.span(), kUnit);
    service.run_pending();
    return f.wait().status;
  };

  // Two failing primary batches trip the breaker. The requests still
  // complete Ok — the singly-rescue path repairs them — so callers see
  // latency, never errors, while the breaker counts the batch failures.
  Bytes p1(kKey.r * kUnit), p2(kKey.r * kUnit), p3(kKey.r * kUnit);
  EXPECT_EQ(one(p1), RequestStatus::Ok);
  EXPECT_EQ(one(p2), RequestStatus::Ok);
  ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.breaker_trips, 1u);
  EXPECT_EQ(s.degraded_batches, 0u);

  // Tripped: the next batch runs on the naive reference backend —
  // byte-identical parity, injector never consulted.
  EXPECT_EQ(one(p3), RequestStatus::Ok);
  s = service.stats();
  EXPECT_EQ(s.degraded_batches, 1u);
  EXPECT_EQ(std::memcmp(p3.data(), want.data(), want.size()), 0);

  // Observable in health() as a degraded (not unhealthy) service.
  const HealthSnapshot h = service.health();
  EXPECT_EQ(h.state, HealthState::Degraded);
  ASSERT_FALSE(h.reasons.empty());
  EXPECT_NE(h.reasons.front().find("breaker"), std::string::npos);
}

TEST(EcService, BreakerRecoversThroughProbes) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.breaker.failure_threshold = 1;
  cfg.breaker.success_threshold = 2;
  cfg.breaker.cooldown = std::chrono::nanoseconds(0);  // probe immediately
  std::atomic<bool> inject{true};
  cfg.fault_injector = [&](RequestKind, const CodecKey&, std::size_t) {
    return inject.load();
  };
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 25);
  const auto one = [&] {
    Bytes parity(kKey.r * kUnit);
    EcFuture f =
        service.submit_encode(kKey, data.span(), parity.span(), kUnit);
    service.run_pending();
    return f.wait().status;
  };

  EXPECT_EQ(one(), RequestStatus::Ok);  // primary fails (rescued), trips
  ASSERT_EQ(service.stats().breaker_trips, 1u);

  // Backend "recovers": probes now succeed. Two probe successes close.
  inject.store(false);
  EXPECT_EQ(one(), RequestStatus::Ok);  // probe 1
  EXPECT_EQ(one(), RequestStatus::Ok);  // probe 2 -> Closed
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.breaker_recoveries, 1u);
  EXPECT_GE(s.breaker_probes, 2u);
  EXPECT_EQ(service.health().state, HealthState::Ok);
  // And the next batch is primary again (no further degraded batches).
  EXPECT_EQ(one(), RequestStatus::Ok);
  EXPECT_EQ(service.stats().degraded_batches, s.degraded_batches);
}

TEST(EcService, BreakerDisabledKeepsRetryingPrimary) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.breaker.enabled = false;
  std::atomic<int> injections{0};
  cfg.fault_injector = [&](RequestKind, const CodecKey&, std::size_t) {
    ++injections;
    return true;
  };
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 26);
  for (int i = 0; i < 5; ++i) {
    Bytes parity(kKey.r * kUnit);
    EcFuture f =
        service.submit_encode(kKey, data.span(), parity.span(), kUnit);
    service.run_pending();
    EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  }
  EXPECT_EQ(injections.load(), 5);  // every batch retried the primary
  EXPECT_EQ(service.stats().degraded_batches, 0u);
  EXPECT_EQ(service.stats().breaker_trips, 0u);
}

TEST(EcService, CounterIdentitiesHoldAcrossAllOutcomes) {
  // Satellite audit: one run that exercises every terminal bucket, then
  // checks both identities exactly.
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.batch.queue_capacity = 4;
  cfg.batch.deadline_shedding = true;
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 27);
  std::vector<Bytes> parities;
  std::vector<EcFuture> futures;
  const auto submit = [&](std::chrono::nanoseconds timeout) {
    parities.emplace_back(kKey.r * kUnit);
    futures.push_back(service.submit_encode(
        kKey, data.span(), parities.back().span(), kUnit, timeout));
  };

  submit({});                         // -> Ok
  submit(std::chrono::seconds(-1));   // -> Shed (shedding on)
  submit({});                         // -> Cancelled
  futures.back().cancel();
  service.run_pending();              // executes the two queued ones
  submit({});                         // queued ...
  submit({});
  submit({});
  submit({});                         // queue now full (capacity 4)
  submit({});                         // -> Overloaded
  service.shutdown(/*drain=*/false);  // queued 4 -> Shutdown (drained)
  submit({});                         // -> Shutdown (rejected at submit)

  for (auto& f : futures) ASSERT_TRUE(f.ready());
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.submitted, 9u);
  EXPECT_EQ(s.completed_ok, 1u);
  EXPECT_EQ(s.rejected_shed, 1u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.rejected_overload, 1u);
  EXPECT_EQ(s.shutdown_drained, 4u);
  EXPECT_EQ(s.rejected_shutdown, 1u);
  EXPECT_EQ(s.submitted, s.accepted + s.rejected_overload + s.rejected_shed +
                             s.rejected_shutdown);
  EXPECT_EQ(s.accepted, s.completed_ok + s.expired + s.failed + s.cancelled +
                            s.shutdown_drained);
}

TEST(EcService, HealthReportsOkThenUnhealthyAfterShutdown) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  EcService service(cfg);
  HealthSnapshot h = service.health();
  EXPECT_EQ(h.state, HealthState::Ok);
  EXPECT_TRUE(h.reasons.empty());
  service.shutdown();
  h = service.health();
  EXPECT_EQ(h.state, HealthState::Unhealthy);
  ASSERT_FALSE(h.reasons.empty());
  EXPECT_NE(h.reasons.front().find("shut down"), std::string::npos);
}

TEST(EcService, BatchingOffForcesSingletonBatches) {
  ServiceConfig cfg;
  cfg.num_workers = 0;
  cfg.batching = false;
  cfg.batch.max_batch_requests = 32;  // overridden by batching=false
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 11);
  std::vector<Bytes> parities;
  std::vector<EcFuture> futures;
  for (int i = 0; i < 6; ++i) {
    parities.emplace_back(kKey.r * kUnit);
    futures.push_back(
        service.submit_encode(kKey, data.span(), parities.back().span(), kUnit));
  }
  service.run_pending();
  const ServeStatsSnapshot s = service.stats();
  EXPECT_EQ(s.batches, 6u);
  EXPECT_EQ(s.batch_width.max(), 1u);
  for (auto& f : futures) EXPECT_EQ(f.wait().batch_size, 1u);
}

// --- Mid-kernel cancellation and the watchdog ------------------------------
//
// These tests need a kernel that runs long enough (hundreds of ms) for a
// cancellation or a stuck-budget to land while it executes. We calibrate
// a unit size on this machine rather than hardcoding one, and force the
// serial kernel path (num_workers == pool size ⇒ one gemm thread per
// worker) so the calibrated time is stable.

constexpr CodecKey kHeavyKey{10, 4, 16, ec::RsFamily::CauchyGood};

std::size_t heavy_workers() {
  return std::max<std::size_t>(1, tensor::ThreadPool::shared().size());
}

struct SlowShape {
  std::size_t unit = 0;
  std::chrono::nanoseconds service_time{};  // one-request encode, serial
};

const SlowShape& slow_shape() {
  static const SlowShape shape = [] {
    ServiceConfig cfg;
    cfg.num_workers = heavy_workers();
    cfg.watchdog.enabled = false;
    EcService service(cfg);
    SlowShape s;
    for (s.unit = std::size_t(1) << 16;; s.unit *= 2) {
      const Bytes data = testutil::random_bytes(kHeavyKey.k * s.unit, 31);
      Bytes parity(kHeavyKey.r * s.unit);
      const auto t0 = std::chrono::steady_clock::now();
      EcFuture f =
          service.submit_encode(kHeavyKey, data.span(), parity.span(), s.unit);
      EXPECT_EQ(f.wait().status, RequestStatus::Ok);
      s.service_time = std::chrono::steady_clock::now() - t0;
      if (s.service_time >= std::chrono::milliseconds(150) ||
          s.unit >= (std::size_t(1) << 22))
        break;
    }
    return s;
  }();
  return shape;
}

TEST(Watchdog, AbortsExpiredBatchMidKernel) {
  const SlowShape& shape = slow_shape();
  ServiceConfig cfg;
  cfg.num_workers = heavy_workers();
  cfg.watchdog.poll = std::chrono::milliseconds(1);
  cfg.watchdog.stuck_budget = std::chrono::hours(1);
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kHeavyKey.k * shape.unit, 32);
  Bytes parity(kHeavyKey.r * shape.unit);
  // Warm the codec slot so construction cost doesn't eat the deadline.
  ASSERT_EQ(service.submit_encode(kHeavyKey, data.span(), parity.span(),
                                  shape.unit)
                .wait()
                .status,
            RequestStatus::Ok);

  // A deadline a fraction of the kernel time: the batch forms in time,
  // the deadline expires mid-kernel, the watchdog cancels the batch.
  const auto t0 = std::chrono::steady_clock::now();
  EcFuture f = service.submit_encode(kHeavyKey, data.span(), parity.span(),
                                     shape.unit, shape.service_time / 6);
  EXPECT_EQ(f.wait().status, RequestStatus::Expired);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Aborted well before a full kernel would have finished — the overshoot
  // past the deadline is bounded by one poll plus one tile-chunk.
  EXPECT_LT(elapsed, shape.service_time * 3 / 4);
  EXPECT_GE(service.stats().watchdog_aborts, 1u);
}

TEST(Watchdog, ClientCancelAbortsRunningBatch) {
  const SlowShape& shape = slow_shape();
  ServiceConfig cfg;
  cfg.num_workers = heavy_workers();
  cfg.watchdog.poll = std::chrono::milliseconds(1);
  cfg.watchdog.stuck_budget = std::chrono::hours(1);
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kHeavyKey.k * shape.unit, 33);
  Bytes parity(kHeavyKey.r * shape.unit);
  ASSERT_EQ(service.submit_encode(kHeavyKey, data.span(), parity.span(),
                                  shape.unit)
                .wait()
                .status,
            RequestStatus::Ok);

  const std::uint64_t batches0 = service.stats().batches;
  EcFuture f =
      service.submit_encode(kHeavyKey, data.span(), parity.span(), shape.unit);
  // Wait until the batch is executing (the counter bumps just before the
  // kernel), so this cancel can only land mid-kernel via the watchdog.
  while (service.stats().batches == batches0) std::this_thread::yield();
  const auto t0 = std::chrono::steady_clock::now();
  f.cancel();
  EXPECT_EQ(f.wait().status, RequestStatus::Cancelled);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, shape.service_time * 3 / 4);
  EXPECT_GE(service.stats().watchdog_aborts, 1u);
}

TEST(Watchdog, StuckWorkerSurfacesInHealth) {
  const SlowShape& shape = slow_shape();
  ServiceConfig cfg;
  cfg.num_workers = heavy_workers();
  cfg.watchdog.poll = std::chrono::milliseconds(1);
  cfg.watchdog.stuck_budget = std::chrono::milliseconds(20);
  EcService service(cfg);
  const Bytes data = testutil::random_bytes(kHeavyKey.k * shape.unit, 34);
  Bytes parity(kHeavyKey.r * shape.unit);
  EcFuture f =
      service.submit_encode(kHeavyKey, data.span(), parity.span(), shape.unit);

  // The (legitimately slow) kernel blows the 20ms stuck budget: health
  // degrades with a stuck-worker reason while it runs.
  bool saw_stuck = false;
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!f.ready() && std::chrono::steady_clock::now() < give_up) {
    const HealthSnapshot h = service.health();
    for (const std::string& reason : h.reasons) {
      if (reason.find("stuck") != std::string::npos) {
        EXPECT_NE(h.state, HealthState::Ok);
        saw_stuck = true;
      }
    }
    if (saw_stuck) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_stuck);

  // The request itself is fine — stuck is a health signal, not an abort.
  EXPECT_EQ(f.wait().status, RequestStatus::Ok);
  EXPECT_GE(service.stats().watchdog_stuck, 1u);

  // The flag clears with the batch; health recovers.
  const auto recover_by =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service.health().state != HealthState::Ok &&
         std::chrono::steady_clock::now() < recover_by)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(service.health().state, HealthState::Ok);
}


/// Tentpole acceptance: payloads in registered (64-byte-aligned) buffers
/// flow submit -> batch formation -> scattered kernel -> result with zero
/// staging memcpys, and the result is byte-identical to the sequential
/// Codec oracle.
TEST(EcService, RegisteredBuffersEncodeWithZeroStagingCopies) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.batch.max_batch_requests = 8;
  EcService service(cfg);
  BufferPool pool;

  constexpr int kRequests = 6;
  std::vector<RegisteredBuffer> datas;
  std::vector<RegisteredBuffer> parities;
  std::vector<Bytes> oracles;
  for (int i = 0; i < kRequests; ++i) {
    datas.push_back(pool.acquire(kKey.k * kUnit));
    parities.push_back(pool.acquire(kKey.r * kUnit));
    const Bytes fill =
        testutil::random_bytes(kKey.k * kUnit, 700 + static_cast<unsigned>(i));
    std::memcpy(datas.back().data(), fill.data(), fill.size());
    oracles.push_back(oracle_parity(kKey, datas.back().span(), kUnit));
  }

  const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
  std::vector<EcFuture> futures;
  for (int i = 0; i < kRequests; ++i)
    futures.push_back(service.submit_encode(
        kKey, datas[i].span(),
        std::span<std::uint8_t>(parities[i].data(), kKey.r * kUnit), kUnit));
  for (auto& f : futures) ASSERT_EQ(f.wait().status, RequestStatus::Ok);

  // Zero intermediate copies: the kernel read the client payloads and
  // wrote the parities in place.
  EXPECT_EQ(tensor::kernel_stage_stats().stage_copies, before);
  for (int i = 0; i < kRequests; ++i)
    EXPECT_EQ(std::memcmp(parities[i].data(), oracles[i].data(),
                          oracles[i].size()),
              0)
        << "request " << i;
}

TEST(EcService, MisalignedPayloadFallsBackToStaging) {
  ServiceConfig cfg;
  cfg.num_workers = 1;
  EcService service(cfg);

  // Same payload, shifted one byte off word alignment: correctness is
  // preserved through the staged fallback and the counter records it.
  Bytes raw(kKey.k * kUnit + 1);
  const Bytes fill = testutil::random_bytes(kKey.k * kUnit, 801);
  std::memcpy(raw.data() + 1, fill.data(), fill.size());
  const std::span<const std::uint8_t> data(raw.data() + 1, kKey.k * kUnit);
  Bytes parity(kKey.r * kUnit);

  const std::uint64_t before = tensor::kernel_stage_stats().stage_copies;
  EcFuture f = service.submit_encode(kKey, data, parity.span(), kUnit);
  ASSERT_EQ(f.wait().status, RequestStatus::Ok);
  EXPECT_GT(tensor::kernel_stage_stats().stage_copies, before);

  const Bytes want = oracle_parity(kKey, fill.span(), kUnit);
  EXPECT_EQ(std::memcmp(parity.data(), want.data(), want.size()), 0);
}

TEST(EcService, SharedPlanCacheReportsHits) {
  const auto cache = std::make_shared<core::PlanCache>();
  ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.plan_cache = cache;
  EcService service(cfg);

  const Bytes data = testutil::random_bytes(kKey.k * kUnit, 900);
  Bytes stripe(kKey.n() * kUnit);
  std::memcpy(stripe.data(), data.data(), data.size());
  const Bytes parity = oracle_parity(kKey, data.span(), kUnit);
  std::memcpy(stripe.data() + kKey.k * kUnit, parity.data(), parity.size());
  const Bytes want = stripe;

  const std::vector<std::size_t> erased{0, 3};
  for (int round = 0; round < 3; ++round) {
    std::memcpy(stripe.data(), want.data(), want.size());
    for (const std::size_t id : erased)
      std::memset(stripe.data() + id * kUnit, 0xEE, kUnit);
    EcFuture f = service.submit_decode(kKey, stripe.span(), erased, kUnit);
    ASSERT_EQ(f.wait().status, RequestStatus::Ok);
    ASSERT_EQ(std::memcmp(stripe.data(), want.data(), want.size()), 0);
  }

  const ServeStatsSnapshot s = service.stats();
  EXPECT_GE(s.plan_cache_misses, 1u);
  EXPECT_GE(s.plan_cache_hits + s.plan_cache_misses, 1u);
  // Repeated loss patterns hit the shared cache (the codec builds the
  // plan once; later rounds reuse it).
  EXPECT_GE(cache->stats().hits + cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits + cache->stats().misses,
            s.plan_cache_hits + s.plan_cache_misses);
}

}  // namespace
}  // namespace tvmec::serve
