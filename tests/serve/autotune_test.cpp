// serve/autotune.h — traffic profiling, the schedule cache and its
// tuning-log persistence (round-trip, concurrent saves, unavailable
// variants dropped-and-counted), and the continuous autotuner's
// warm-start/install cycle.

#include "serve/autotune.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/ec_service.h"
#include "tensor/variant.h"

namespace tvmec::serve {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(::testing::TempDir() + "/" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

constexpr CodecKey kKey{4, 2, 8, ec::RsFamily::CauchyGood};

tune::TaskShape shape_of(const CodecKey& key, std::size_t unit) {
  return tune::TaskShape{key.r * key.w, unit / (8 * key.w), key.k * key.w};
}

TEST(TrafficProfile, RecordsTopAndFirstSeen) {
  TrafficProfile traffic;
  EXPECT_TRUE(traffic.record(kKey, 512));
  EXPECT_FALSE(traffic.record(kKey, 512));
  EXPECT_TRUE(traffic.record(kKey, 1024));
  for (int i = 0; i < 8; ++i) traffic.record(kKey, 1024);
  EXPECT_EQ(traffic.total(), 11u);
  EXPECT_EQ(traffic.distinct_pairs(), 2u);

  const auto top = traffic.top(10, /*min_requests=*/1);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].unit_size, 1024u);  // hotter pair first
  EXPECT_EQ(top[0].requests, 9u);
  EXPECT_EQ(top[1].unit_size, 512u);

  // min_requests filters, n truncates.
  EXPECT_EQ(traffic.top(10, 5).size(), 1u);
  EXPECT_EQ(traffic.top(1, 1).size(), 1u);
}

TEST(TrafficProfile, DecayHalvesAndForgets) {
  TrafficProfile traffic;
  traffic.record(kKey, 512);  // count 1
  for (int i = 0; i < 4; ++i) traffic.record(kKey, 1024);
  traffic.decay();  // 512 -> 0 (forgotten), 1024 -> 2
  EXPECT_EQ(traffic.distinct_pairs(), 1u);
  EXPECT_EQ(traffic.total(), 2u);
  EXPECT_TRUE(traffic.record(kKey, 512));  // re-registers as first-seen
}

TEST(ScheduleCache, LookupCountsHitsAndMisses) {
  ScheduleCache cache;
  const tune::TaskShape shape = shape_of(kKey, 512);
  EXPECT_FALSE(cache.lookup(shape).has_value());
  tensor::Schedule s = default_service_schedule();
  s.tile_m = 2;
  cache.install(shape, {s, 5.0e9});
  const auto hit = cache.lookup(shape);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->schedule, s);
  EXPECT_DOUBLE_EQ(hit->throughput, 5.0e9);
  const ScheduleCache::Stats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.installs, 1u);
}

TEST(ScheduleCache, SaveLoadRoundTrip) {
  TempFile tmp("schedule_cache_roundtrip.log");
  ScheduleCache cache;
  tensor::Schedule a = default_service_schedule();
  a.tile_m = 2;
  tensor::Schedule b = default_service_schedule();
  b.block_k = 64;
  cache.install(shape_of(kKey, 512), {a, 1.0e9});
  cache.install(shape_of(kKey, 4096), {b, 2.0e9});
  cache.save(tmp.path);

  ScheduleCache fresh;
  tune::LoadLogStats stats;
  EXPECT_EQ(fresh.load(tmp.path, &stats), 2u);
  EXPECT_EQ(stats.dropped_unavailable_variant, 0u);
  EXPECT_EQ(fresh.size(), 2u);
  const auto ea = fresh.lookup(shape_of(kKey, 512));
  ASSERT_TRUE(ea.has_value());
  EXPECT_EQ(ea->schedule, a);
  EXPECT_DOUBLE_EQ(ea->throughput, 1.0e9);
  const auto eb = fresh.lookup(shape_of(kKey, 4096));
  ASSERT_TRUE(eb.has_value());
  EXPECT_EQ(eb->schedule, b);
  EXPECT_EQ(fresh.stats().loaded_records, 2u);
}

TEST(ScheduleCache, LoadMergesBestRecordPerShape) {
  TempFile tmp("schedule_cache_merge.log");
  const tune::TaskShape shape = shape_of(kKey, 512);
  {
    // Hand-written log with two records for one shape: best must win.
    std::ofstream out(tmp.path);
    tensor::Schedule slow = default_service_schedule();
    tensor::Schedule fast = default_service_schedule();
    fast.tile_m = 2;
    out << shape.m << "x" << shape.n << "x" << shape.k << " | "
        << slow.to_string() << " | 1e9\n";
    out << shape.m << "x" << shape.n << "x" << shape.k << " | "
        << fast.to_string() << " | 3e9\n";
  }
  ScheduleCache cache;
  // An already-better cached entry survives a weaker log...
  tensor::Schedule best = default_service_schedule();
  best.tile_n = 8;
  cache.install(shape, {best, 9.0e9});
  cache.load(tmp.path);
  EXPECT_EQ(cache.lookup(shape)->schedule, best);

  // ...and a weaker cached entry is upgraded to the log's best.
  ScheduleCache weak;
  weak.install(shape, {default_service_schedule(), 0.5e9});
  weak.load(tmp.path);
  EXPECT_DOUBLE_EQ(weak.lookup(shape)->throughput, 3.0e9);
}

TEST(ScheduleCache, MissingFileLoadsNothingAndMalformedThrows) {
  ScheduleCache cache;
  EXPECT_EQ(cache.load(::testing::TempDir() + "/no_such_cache.log"), 0u);
  TempFile tmp("schedule_cache_malformed.log");
  {
    std::ofstream out(tmp.path);
    out << "not a record\n";
  }
  EXPECT_THROW(cache.load(tmp.path), std::runtime_error);
}

TEST(ScheduleCache, UnavailableVariantRecordsDroppedAndCounted) {
  // Find a concrete kernel tier the running host lacks; on a host with
  // every tier (impossible today — no machine has AVX-512 and NEON)
  // there would be nothing to drop.
  tensor::KernelVariant missing = tensor::KernelVariant::Auto;
  for (const tensor::KernelVariant v :
       {tensor::KernelVariant::Neon, tensor::KernelVariant::Avx512,
        tensor::KernelVariant::Avx2}) {
    if (!tensor::variant_available(v)) {
      missing = v;
      break;
    }
  }
  if (missing == tensor::KernelVariant::Auto)
    GTEST_SKIP() << "host supports every kernel variant";

  TempFile tmp("schedule_cache_variant.log");
  const tune::TaskShape shape = shape_of(kKey, 512);
  {
    std::ofstream out(tmp.path);
    tensor::Schedule foreign = default_service_schedule();
    foreign.variant = missing;
    tensor::Schedule local = default_service_schedule();
    out << shape.m << "x" << shape.n << "x" << shape.k << " | "
        << foreign.to_string() << " | 9e9\n";
    out << shape.m << "x" << shape.n << "x" << shape.k << " | "
        << local.to_string() << " | 1e9\n";
  }
  ScheduleCache cache;
  tune::LoadLogStats stats;
  EXPECT_EQ(cache.load(tmp.path, &stats), 1u);
  EXPECT_EQ(stats.dropped_unavailable_variant, 1u);
  EXPECT_EQ(cache.stats().dropped_unavailable_variant, 1u);
  // The surviving (runnable) record is the one cached, despite the
  // foreign record's higher throughput.
  ASSERT_TRUE(cache.lookup(shape).has_value());
  EXPECT_DOUBLE_EQ(cache.lookup(shape)->throughput, 1.0e9);
}

TEST(ScheduleCache, SaveUnderConcurrentInstallsYieldsParsableFile) {
  TempFile tmp("schedule_cache_concurrent.log");
  ScheduleCache cache;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    tensor::Schedule s = default_service_schedule();
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      // Rotate across shapes and throughputs while saves snapshot.
      cache.install(shape_of(kKey, 512 * (1 + i % 4)),
                    {s, 1.0e9 + static_cast<double>(i)});
      ++i;
    }
  });
  for (int i = 0; i < 20; ++i) cache.save(tmp.path);
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  cache.save(tmp.path);  // final quiescent save

  // Every save wrote a complete snapshot (tmp + rename): the file must
  // parse and hold every shape present at the final save.
  ScheduleCache fresh;
  EXPECT_EQ(fresh.load(tmp.path), cache.size());
  EXPECT_EQ(fresh.size(), cache.size());
}

TEST(ContinuousAutotuner, CtorValidates) {
  TrafficProfile traffic;
  ScheduleCache cache;
  AutotunePolicy policy;
  EXPECT_THROW(ContinuousAutotuner(policy, traffic, cache, nullptr),
               std::invalid_argument);
  policy.trials = 0;
  EXPECT_THROW(ContinuousAutotuner(policy, traffic, cache,
                                   [](const CodecKey&,
                                      const tensor::Schedule&) {}),
               std::invalid_argument);
}

TEST(ContinuousAutotuner, CycleTunesHotPairAndInstalls) {
  TrafficProfile traffic;
  ScheduleCache cache;
  AutotunePolicy policy;
  policy.enabled = true;
  policy.background = false;
  policy.trials = 2;
  policy.min_requests = 4;
  policy.max_pairs_per_cycle = 1;
  policy.min_gain = 1.0;

  std::vector<CodecKey> installed;
  ContinuousAutotuner tuner(policy, traffic, cache,
                            [&](const CodecKey& key,
                                const tensor::Schedule&) {
                              installed.push_back(key);
                            });

  // Below min_requests: nothing to tune.
  traffic.record(kKey, 512);
  EXPECT_EQ(tuner.run_cycle(), 0u);
  EXPECT_EQ(tuner.stats().pairs_considered, 0u);

  for (int i = 0; i < 8; ++i) traffic.record(kKey, 512);
  const std::size_t published = tuner.run_cycle();
  EXPECT_GE(published, 1u);  // measured throughput > 0 beats empty cache
  ASSERT_FALSE(installed.empty());
  EXPECT_EQ(installed.front(), kKey);
  const AutotuneStats st = tuner.stats();
  EXPECT_EQ(st.cycles, 2u);
  EXPECT_EQ(st.pairs_considered, 1u);
  EXPECT_GE(st.trials_run, 2u);
  EXPECT_EQ(st.installs, 1u);
  // The winner landed in the cache under the pair's task shape.
  EXPECT_TRUE(cache.lookup(shape_of(kKey, 512)).has_value());
}

TEST(ContinuousAutotuner, WarmStartPublishesCachedScheduleOnce) {
  TrafficProfile traffic;
  ScheduleCache cache;
  // A cached record no live measurement can beat: only the warm-start
  // install may publish.
  tensor::Schedule best = default_service_schedule();
  best.tile_m = 2;
  cache.install(shape_of(kKey, 512), {best, 1.0e18});

  AutotunePolicy policy;
  policy.enabled = true;
  policy.background = false;
  policy.trials = 1;
  policy.min_requests = 1;

  std::vector<tensor::Schedule> published;
  ContinuousAutotuner tuner(policy, traffic, cache,
                            [&](const CodecKey&,
                                const tensor::Schedule& s) {
                              published.push_back(s);
                            });
  traffic.record(kKey, 512);
  EXPECT_EQ(tuner.run_cycle(), 1u);
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published.front(), best);
  EXPECT_EQ(tuner.stats().warm_start_installs, 1u);
  EXPECT_EQ(tuner.stats().installs, 0u);

  // Same pair again: already published, nothing new.
  traffic.record(kKey, 512);
  EXPECT_EQ(tuner.run_cycle(), 0u);
  EXPECT_EQ(published.size(), 1u);
}

TEST(ContinuousAutotuner, PersistsWinnersForWarmRestart) {
  TempFile tmp("autotune_persist.log");
  TrafficProfile traffic;
  ScheduleCache cache;
  AutotunePolicy policy;
  policy.enabled = true;
  policy.background = false;
  policy.trials = 2;
  policy.min_requests = 1;
  policy.min_gain = 1.0;
  policy.log_path = tmp.path;

  ContinuousAutotuner tuner(policy, traffic, cache,
                            [](const CodecKey&, const tensor::Schedule&) {});
  traffic.record(kKey, 512);
  ASSERT_GE(tuner.run_cycle(), 1u);
  EXPECT_GE(cache.stats().saves, 1u);

  // "Restart": a fresh cache warm-starts from the persisted log.
  ScheduleCache restarted;
  tune::LoadLogStats stats;
  EXPECT_GE(restarted.load(tmp.path, &stats), 1u);
  const auto entry = restarted.lookup(shape_of(kKey, 512));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->schedule, cache.lookup(shape_of(kKey, 512))->schedule);
}

TEST(ContinuousAutotuner, BackgroundThreadStartsAndStops) {
  TrafficProfile traffic;
  ScheduleCache cache;
  AutotunePolicy policy;
  policy.enabled = true;
  policy.background = true;
  policy.interval = std::chrono::milliseconds(1);
  policy.trials = 1;
  policy.min_requests = 1;
  std::atomic<int> installs{0};
  {
    ContinuousAutotuner tuner(policy, traffic, cache,
                              [&](const CodecKey&,
                                  const tensor::Schedule&) { ++installs; });
    tuner.start();
    traffic.record(kKey, 512);
    // Wait (bounded) for at least one background cycle.
    for (int i = 0; i < 2000 && tuner.stats().cycles == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(tuner.stats().cycles, 1u);
    tuner.stop();
    tuner.stop();  // idempotent
  }
  SUCCEED();
}

}  // namespace
}  // namespace tvmec::serve
