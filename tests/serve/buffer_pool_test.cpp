#include "serve/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace tvmec::serve {
namespace {

TEST(BufferPool, AcquireIsAlignedAndSized) {
  BufferPool pool;
  RegisteredBuffer buf = pool.acquire(1000);
  ASSERT_TRUE(buf.valid());
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                tensor::kBufferAlignment,
            0u);
  std::memset(buf.data(), 0xAB, buf.size());
}

TEST(BufferPool, RejectsZeroByteAcquire) {
  BufferPool pool;
  EXPECT_THROW(pool.acquire(0), std::invalid_argument);
}

TEST(BufferPool, ReleaseThenReacquireHitsFreeList) {
  BufferPool pool;
  {
    RegisteredBuffer buf = pool.acquire(4096);
    EXPECT_EQ(pool.stats().pool_misses, 1u);
    EXPECT_EQ(pool.stats().bytes_out, 4096u);
  }  // released
  auto st = pool.stats();
  EXPECT_EQ(st.releases, 1u);
  EXPECT_EQ(st.bytes_out, 0u);
  EXPECT_EQ(st.bytes_cached, 4096u);

  // Same size class: served from the free list, no allocation.
  RegisteredBuffer again = pool.acquire(3000);  // rounds up to 4096
  st = pool.stats();
  EXPECT_EQ(st.pool_hits, 1u);
  EXPECT_EQ(st.pool_misses, 1u);
  EXPECT_EQ(st.bytes_cached, 0u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.5);
}

TEST(BufferPool, CacheCapDiscardsExcess) {
  BufferPool pool(/*max_cached_bytes=*/8192);
  std::vector<RegisteredBuffer> bufs;
  for (int i = 0; i < 4; ++i) bufs.push_back(pool.acquire(4096));
  EXPECT_EQ(pool.stats().high_water_bytes_out, 4u * 4096u);
  bufs.clear();  // 4 x 4096 released into an 8192-byte cache
  const auto st = pool.stats();
  EXPECT_EQ(st.releases, 2u);
  EXPECT_EQ(st.discarded, 2u);
  EXPECT_LE(st.bytes_cached, 8192u);
}

TEST(BufferPool, LeaseOutlivesPool) {
  RegisteredBuffer buf;
  {
    BufferPool pool;
    buf = pool.acquire(256);
    std::memset(buf.data(), 0x5C, 256);
  }  // pool destroyed with the lease still out
  ASSERT_TRUE(buf.valid());
  for (std::size_t i = 0; i < 256; ++i) EXPECT_EQ(buf.data()[i], 0x5C);
  buf.release();  // frees instead of caching into the dead pool
  EXPECT_FALSE(buf.valid());
}

TEST(BufferPool, MoveTransfersLease) {
  BufferPool pool;
  RegisteredBuffer a = pool.acquire(512);
  const std::uint8_t* p = a.data();
  RegisteredBuffer b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.size(), 512u);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)

  // Move-assign over a live lease releases the old one first.
  RegisteredBuffer c = pool.acquire(512);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
  EXPECT_EQ(pool.stats().bytes_out, 512u);
}

TEST(BufferPool, ConcurrentAcquireRelease) {
  BufferPool pool(std::size_t{1} << 20);
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        RegisteredBuffer buf = pool.acquire(1024 + (t % 3) * 4096);
        ASSERT_TRUE(buf.valid());
        buf.data()[0] = static_cast<std::uint8_t>(t);
        ASSERT_EQ(buf.data()[0], static_cast<std::uint8_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto st = pool.stats();
  EXPECT_EQ(st.acquires, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(st.bytes_out, 0u);
  EXPECT_EQ(st.pool_hits + st.pool_misses, st.acquires);
  // Steady-state reuse: far fewer allocations than acquires.
  EXPECT_GT(st.pool_hits, st.acquires / 2);
}

}  // namespace
}  // namespace tvmec::serve
