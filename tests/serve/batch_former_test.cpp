// serve/batch_former.h — admission control and batch formation,
// including the edge cases: oversized-head bypass, byte/request caps,
// cross-lane FIFO, close/drain semantics, and concurrent producers.

#include "serve/batch_former.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tvmec::serve {
namespace {

PendingRequest make_request(RequestKind kind, std::size_t k,
                            std::size_t payload_bytes) {
  PendingRequest p;
  p.req.kind = kind;
  p.req.key = CodecKey{k, 2, 8, ec::RsFamily::CauchyGood};
  p.completion = std::make_shared<detail::Completion>();
  p.submitted = Clock::now();
  p.payload_bytes = payload_bytes;
  return p;
}

TEST(BatchFormer, RejectsZeroPolicy) {
  EXPECT_THROW(BatchFormer(BatchPolicy{.queue_capacity = 0}),
               std::invalid_argument);
  EXPECT_THROW(BatchFormer(BatchPolicy{.max_batch_requests = 0}),
               std::invalid_argument);
  EXPECT_THROW(BatchFormer(BatchPolicy{.max_batch_bytes = 0}),
               std::invalid_argument);
}

TEST(BatchFormer, CoalescesSameClassUpToRequestCap) {
  BatchFormer former(BatchPolicy{.max_batch_requests = 3});
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
              PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 3u);  // capped
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);  // remainder
  EXPECT_FALSE(former.try_next_batch(batch));
  EXPECT_EQ(former.pending(), 0u);
}

TEST(BatchFormer, DistinctClassesNeverMix) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Decode, 4, 64)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 6, 64)),
            PushResult::Accepted);
  std::vector<PendingRequest> batch;
  // Oldest head first: the k=4 encode lane, then decode, then k=6.
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].req.kind, RequestKind::Encode);
  EXPECT_EQ(batch[0].req.key.k, 4u);
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch[0].req.kind, RequestKind::Decode);
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch[0].req.key.k, 6u);
}

TEST(BatchFormer, OldestLaneServedFirstAcrossClasses) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Decode, 4, 64)),
            PushResult::Accepted);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
              PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  // The decode arrived first; its lane wins even though the encode lane
  // is longer — no class can be starved.
  EXPECT_EQ(batch[0].req.kind, RequestKind::Decode);
}

TEST(BatchFormer, ByteCapSplitsBatches) {
  BatchFormer former(BatchPolicy{.max_batch_bytes = 100});
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 40)),
              PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);  // 40 + 40 fits; +40 would exceed 100
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchFormer, OversizedHeadBypassesCoalescing) {
  BatchFormer former(BatchPolicy{.max_batch_bytes = 100});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 5000)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 40)),
            PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  // The head is always taken: a single request larger than the byte cap
  // forms a batch of one instead of wedging the queue.
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload_bytes, 5000u);
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload_bytes, 40u);
}

TEST(BatchFormer, CapacityBoundRejects) {
  BatchFormer former(BatchPolicy{.queue_capacity = 2});
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::QueueFull);
  // Draining frees capacity again.
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
}

TEST(BatchFormer, CloseRejectsPushesButKeepsQueuedWork) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  former.close();
  EXPECT_TRUE(former.closed());
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Closed);
  // Queued work survives the close (drain-on-shutdown).
  std::vector<PendingRequest> batch = former.next_batch();
  EXPECT_EQ(batch.size(), 1u);
  // Closed and drained: next_batch returns empty without blocking.
  EXPECT_TRUE(former.next_batch().empty());
}

TEST(BatchFormer, DrainAllPreservesAdmissionOrder) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 1)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Decode, 4, 2)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 3)),
            PushResult::Accepted);
  const std::vector<PendingRequest> all = former.drain_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].payload_bytes, 1u);
  EXPECT_EQ(all[1].payload_bytes, 2u);
  EXPECT_EQ(all[2].payload_bytes, 3u);
  EXPECT_EQ(former.pending(), 0u);
}

TEST(BatchFormer, LingerDispatchesImmediatelyOnceClosed) {
  // linger must never delay shutdown: with the former closed, a small
  // batch dispatches without waiting out the linger window.
  BatchFormer former(
      BatchPolicy{.linger = std::chrono::milliseconds(60'000)});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  former.close();
  const auto t0 = Clock::now();
  const std::vector<PendingRequest> batch = former.next_batch();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(10));
}

TEST(BatchFormer, LingerWaitsForBatchToFill) {
  BatchFormer former(BatchPolicy{.max_batch_requests = 2,
                                 .linger = std::chrono::seconds(30)});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  std::thread filler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
              PushResult::Accepted);
  });
  // A full batch releases the linger wait long before the 30s window.
  const std::vector<PendingRequest> batch = former.next_batch();
  filler.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchFormer, LaneCapacityCapsOneClassOnly) {
  BatchPolicy policy;
  policy.queue_capacity = 100;
  policy.lane_capacity = 2;
  BatchFormer former(policy);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  // The hot lane is full; the global queue is nowhere near capacity.
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::QueueFull);
  // Other classes still find room — the fairness property.
  EXPECT_EQ(former.push(make_request(RequestKind::Decode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 6, 64)),
            PushResult::Accepted);
  // Draining the hot lane reopens it.
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
}

TEST(BatchFormer, LaneCapRejectionLeavesNoEmptyLane) {
  // A rejected push against a *drained* lane must not recreate it: the
  // lane map only holds lanes with queued work (oldest_lane_locked
  // assumes non-empty lanes exist whenever total_ > 0).
  BatchPolicy policy;
  policy.lane_capacity = 1;
  BatchFormer former(policy);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::QueueFull);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_FALSE(former.try_next_batch(batch));
  EXPECT_EQ(former.pending(), 0u);
}

TEST(BatchFormer, ShedsRequestWithUnmeetableDeadline) {
  BatchPolicy policy;
  policy.deadline_shedding = true;
  BatchFormer former(policy);
  // A deadline already in the past is unmeetable under any EWMA.
  PendingRequest doomed = make_request(RequestKind::Encode, 4, 64);
  doomed.req.deadline = Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(former.push(std::move(doomed)), PushResult::Shed);
  // A comfortable deadline passes (EWMA starts at zero).
  PendingRequest fine = make_request(RequestKind::Encode, 4, 64);
  fine.req.deadline = Clock::now() + std::chrono::hours(1);
  EXPECT_EQ(former.push(std::move(fine)), PushResult::Accepted);
  // No deadline at all is never shed.
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.pending(), 2u);
}

TEST(BatchFormer, SheddingDisabledNeverSheds) {
  BatchFormer former(BatchPolicy{});
  PendingRequest late = make_request(RequestKind::Encode, 4, 64);
  late.req.deadline = Clock::now() - std::chrono::milliseconds(1);
  // Queued normally; deadline enforcement happens at batch formation.
  EXPECT_EQ(former.push(std::move(late)), PushResult::Accepted);
}

TEST(BatchFormer, QueueWaitEwmaTracksObservedWaits) {
  BatchFormer former(BatchPolicy{});
  EXPECT_EQ(former.queue_wait_ewma().count(), 0);
  // Backdate the submission to fake a long queue wait; the EWMA must
  // move toward it (one step of alpha=1/8 from zero = wait/8).
  PendingRequest p = make_request(RequestKind::Encode, 4, 64);
  p.submitted = Clock::now() - std::chrono::milliseconds(80);
  ASSERT_EQ(former.push(std::move(p)), PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  const auto ewma = former.queue_wait_ewma();
  EXPECT_GE(ewma, std::chrono::milliseconds(80) / 8);
  EXPECT_LT(ewma, std::chrono::milliseconds(80));
}

TEST(BatchFormer, EwmaFeedsBackIntoShedding) {
  BatchPolicy policy;
  policy.deadline_shedding = true;
  BatchFormer former(policy);
  // Drive the EWMA up with backdated requests (~1s observed waits).
  for (int i = 0; i < 20; ++i) {
    PendingRequest p = make_request(RequestKind::Encode, 4, 64);
    p.submitted = Clock::now() - std::chrono::seconds(1);
    ASSERT_EQ(former.push(std::move(p)), PushResult::Accepted);
    std::vector<PendingRequest> batch;
    ASSERT_TRUE(former.try_next_batch(batch));
  }
  const auto ewma = former.queue_wait_ewma();
  ASSERT_GT(ewma, std::chrono::milliseconds(500));
  // Keep the queue non-empty so the empty-queue liveness probe does not
  // apply: this test pins the backlogged-shedding behavior.
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  // A deadline tighter than the predicted wait is shed on arrival...
  PendingRequest tight = make_request(RequestKind::Encode, 4, 64);
  tight.req.deadline = Clock::now() + ewma / 2;
  EXPECT_EQ(former.push(std::move(tight)), PushResult::Shed);
  // ...while one with plenty of slack is admitted.
  PendingRequest slack = make_request(RequestKind::Encode, 4, 64);
  slack.req.deadline = Clock::now() + ewma * 4;
  EXPECT_EQ(former.push(std::move(slack)), PushResult::Accepted);
}

TEST(BatchFormer, EmptyQueueProbeBreaksShedStarvation) {
  BatchPolicy policy;
  policy.deadline_shedding = true;
  BatchFormer former(policy);
  // Leave a large stale wait estimate behind an empty queue.
  for (int i = 0; i < 20; ++i) {
    PendingRequest p = make_request(RequestKind::Encode, 4, 64);
    p.submitted = Clock::now() - std::chrono::seconds(1);
    ASSERT_EQ(former.push(std::move(p)), PushResult::Accepted);
    std::vector<PendingRequest> batch;
    ASSERT_TRUE(former.try_next_batch(batch));
  }
  const auto stale = former.queue_wait_ewma();
  ASSERT_GT(stale, std::chrono::milliseconds(500));
  // A not-yet-expired request predicted to miss is admitted anyway as a
  // liveness probe when the queue is empty: without it, a stale
  // estimate would shed every future request and never refresh.
  PendingRequest probe = make_request(RequestKind::Encode, 4, 64);
  probe.req.deadline = Clock::now() + stale / 2;
  EXPECT_EQ(former.push(std::move(probe)), PushResult::Accepted);
  // With the probe queued, the next doomed request sheds as usual.
  PendingRequest doomed = make_request(RequestKind::Encode, 4, 64);
  doomed.req.deadline = Clock::now() + stale / 2;
  EXPECT_EQ(former.push(std::move(doomed)), PushResult::Shed);
  // Popping the probe observes a near-zero wait and walks the estimate
  // back toward reality.
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_LT(former.queue_wait_ewma(), stale);
  // An already-expired request never rides the probe path.
  PendingRequest dead = make_request(RequestKind::Encode, 4, 64);
  dead.req.deadline = Clock::now() - std::chrono::milliseconds(1);
  EXPECT_EQ(former.push(std::move(dead)), PushResult::Shed);
}

TEST(BatchFormer, ServiceTimeEwmaFeedsShedding) {
  BatchPolicy policy;
  policy.deadline_shedding = true;
  BatchFormer former(policy);
  EXPECT_EQ(former.service_time_ewma().count(), 0);
  // Converge the service estimate to ~1s with no queue wait at all: the
  // shedder must reject a request whose deadline leaves room to *start*
  // but not to *finish*.
  for (int i = 0; i < 64; ++i)
    former.note_service_time(std::chrono::seconds(1));
  const auto svc = former.service_time_ewma();
  ASSERT_GT(svc, std::chrono::milliseconds(900));
  ASSERT_EQ(former.queue_wait_ewma().count(), 0);
  // Non-empty queue so the empty-queue liveness probe does not apply.
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  PendingRequest doomed = make_request(RequestKind::Encode, 4, 64);
  doomed.req.deadline = Clock::now() + svc / 2;
  EXPECT_EQ(former.push(std::move(doomed)), PushResult::Shed);
  PendingRequest fine = make_request(RequestKind::Encode, 4, 64);
  fine.req.deadline = Clock::now() + svc * 4;
  EXPECT_EQ(former.push(std::move(fine)), PushResult::Accepted);
}

TEST(BatchFormer, ConcurrentProducersAndConsumersLoseNothing) {
  BatchFormer former(BatchPolicy{.queue_capacity = 1 << 20,
                                 .max_batch_requests = 4});
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> consumed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
                  PushResult::Accepted);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const std::vector<PendingRequest> batch = former.next_batch();
        if (batch.empty()) return;
        consumed.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }
  for (auto& t : producers) t.join();
  former.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(former.pending(), 0u);
}

}  // namespace
}  // namespace tvmec::serve
