// serve/batch_former.h — admission control and batch formation,
// including the edge cases: oversized-head bypass, byte/request caps,
// cross-lane FIFO, close/drain semantics, and concurrent producers.

#include "serve/batch_former.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace tvmec::serve {
namespace {

PendingRequest make_request(RequestKind kind, std::size_t k,
                            std::size_t payload_bytes) {
  PendingRequest p;
  p.req.kind = kind;
  p.req.key = CodecKey{k, 2, 8, ec::RsFamily::CauchyGood};
  p.completion = std::make_shared<detail::Completion>();
  p.submitted = Clock::now();
  p.payload_bytes = payload_bytes;
  return p;
}

TEST(BatchFormer, RejectsZeroPolicy) {
  EXPECT_THROW(BatchFormer(BatchPolicy{.queue_capacity = 0}),
               std::invalid_argument);
  EXPECT_THROW(BatchFormer(BatchPolicy{.max_batch_requests = 0}),
               std::invalid_argument);
  EXPECT_THROW(BatchFormer(BatchPolicy{.max_batch_bytes = 0}),
               std::invalid_argument);
}

TEST(BatchFormer, CoalescesSameClassUpToRequestCap) {
  BatchFormer former(BatchPolicy{.max_batch_requests = 3});
  for (int i = 0; i < 5; ++i)
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
              PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 3u);  // capped
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);  // remainder
  EXPECT_FALSE(former.try_next_batch(batch));
  EXPECT_EQ(former.pending(), 0u);
}

TEST(BatchFormer, DistinctClassesNeverMix) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Decode, 4, 64)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 6, 64)),
            PushResult::Accepted);
  std::vector<PendingRequest> batch;
  // Oldest head first: the k=4 encode lane, then decode, then k=6.
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].req.kind, RequestKind::Encode);
  EXPECT_EQ(batch[0].req.key.k, 4u);
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch[0].req.kind, RequestKind::Decode);
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch[0].req.key.k, 6u);
}

TEST(BatchFormer, OldestLaneServedFirstAcrossClasses) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Decode, 4, 64)),
            PushResult::Accepted);
  for (int i = 0; i < 3; ++i)
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
              PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  // The decode arrived first; its lane wins even though the encode lane
  // is longer — no class can be starved.
  EXPECT_EQ(batch[0].req.kind, RequestKind::Decode);
}

TEST(BatchFormer, ByteCapSplitsBatches) {
  BatchFormer former(BatchPolicy{.max_batch_bytes = 100});
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 40)),
              PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);  // 40 + 40 fits; +40 would exceed 100
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchFormer, OversizedHeadBypassesCoalescing) {
  BatchFormer former(BatchPolicy{.max_batch_bytes = 100});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 5000)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 40)),
            PushResult::Accepted);
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  // The head is always taken: a single request larger than the byte cap
  // forms a batch of one instead of wedging the queue.
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload_bytes, 5000u);
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload_bytes, 40u);
}

TEST(BatchFormer, CapacityBoundRejects) {
  BatchFormer former(BatchPolicy{.queue_capacity = 2});
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::QueueFull);
  // Draining frees capacity again.
  std::vector<PendingRequest> batch;
  ASSERT_TRUE(former.try_next_batch(batch));
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
}

TEST(BatchFormer, CloseRejectsPushesButKeepsQueuedWork) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  former.close();
  EXPECT_TRUE(former.closed());
  EXPECT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Closed);
  // Queued work survives the close (drain-on-shutdown).
  std::vector<PendingRequest> batch = former.next_batch();
  EXPECT_EQ(batch.size(), 1u);
  // Closed and drained: next_batch returns empty without blocking.
  EXPECT_TRUE(former.next_batch().empty());
}

TEST(BatchFormer, DrainAllPreservesAdmissionOrder) {
  BatchFormer former(BatchPolicy{});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 1)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Decode, 4, 2)),
            PushResult::Accepted);
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 3)),
            PushResult::Accepted);
  const std::vector<PendingRequest> all = former.drain_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].payload_bytes, 1u);
  EXPECT_EQ(all[1].payload_bytes, 2u);
  EXPECT_EQ(all[2].payload_bytes, 3u);
  EXPECT_EQ(former.pending(), 0u);
}

TEST(BatchFormer, LingerDispatchesImmediatelyOnceClosed) {
  // linger must never delay shutdown: with the former closed, a small
  // batch dispatches without waiting out the linger window.
  BatchFormer former(
      BatchPolicy{.linger = std::chrono::milliseconds(60'000)});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  former.close();
  const auto t0 = Clock::now();
  const std::vector<PendingRequest> batch = former.next_batch();
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(10));
}

TEST(BatchFormer, LingerWaitsForBatchToFill) {
  BatchFormer former(BatchPolicy{.max_batch_requests = 2,
                                 .linger = std::chrono::seconds(30)});
  ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
            PushResult::Accepted);
  std::thread filler([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
              PushResult::Accepted);
  });
  // A full batch releases the linger wait long before the 30s window.
  const std::vector<PendingRequest> batch = former.next_batch();
  filler.join();
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchFormer, ConcurrentProducersAndConsumersLoseNothing) {
  BatchFormer former(BatchPolicy{.queue_capacity = 1 << 20,
                                 .max_batch_requests = 4});
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> consumed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_EQ(former.push(make_request(RequestKind::Encode, 4, 64)),
                  PushResult::Accepted);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const std::vector<PendingRequest> batch = former.next_batch();
        if (batch.empty()) return;
        consumed.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }
  for (auto& t : producers) t.join();
  former.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(former.pending(), 0u);
}

}  // namespace
}  // namespace tvmec::serve
