#include "accel/device_codec.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "baselines/naive.h"

namespace tvmec::accel {
namespace {

constexpr std::size_t kUnit = 8192;

DeviceBuffer upload_data(Device& dev, const ec::CodeParams& p,
                         std::uint64_t seed) {
  const auto host = testutil::random_bytes(p.k * kUnit, seed);
  DeviceBuffer data = dev.alloc(p.k * kUnit);
  dev.copy_to_device(data, host.span());
  return data;
}

TEST(DeviceCodec, OnDeviceEncodeMatchesHostReference) {
  Device dev;
  const ec::CodeParams p{10, 4, 8};
  DeviceCodec codec(dev, p);
  const auto host_data = testutil::random_bytes(p.k * kUnit, 1);
  DeviceBuffer data = dev.alloc(p.k * kUnit);
  dev.copy_to_device(data, host_data.span());

  DeviceBuffer parity = dev.alloc(p.r * kUnit);
  codec.encode_on_device(data, parity, kUnit);
  std::vector<std::uint8_t> got(p.r * kUnit);
  dev.copy_to_host(got, parity);

  const ec::ReedSolomon rs(p);
  tensor::AlignedBuffer<std::uint8_t> expect(p.r * kUnit);
  baseline::NaiveBitmatrixCoder(rs.parity_matrix())
      .apply(host_data.span(), expect.span(), kUnit);
  EXPECT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                         got.begin()));
}

TEST(DeviceCodec, BothCheckpointPathsProduceIdenticalParity) {
  Device dev;
  const ec::CodeParams p{8, 3, 8};
  DeviceCodec codec(dev, p);
  DeviceBuffer data = upload_data(dev, p, 2);
  const auto on_device = codec.checkpoint_on_device(data, kUnit);
  const auto via_host = codec.checkpoint_via_host(data, kUnit);
  EXPECT_EQ(on_device, via_host);
}

/// The §3 data-movement claim, quantified: the on-device path moves r
/// units over the interconnect, the ship-to-host path moves k units.
TEST(DeviceCodec, OnDevicePathMovesKOverRTimesLessData) {
  Device dev;
  const ec::CodeParams p{10, 4, 8};
  DeviceCodec codec(dev, p);
  DeviceBuffer data = upload_data(dev, p, 3);

  dev.reset_stats();
  codec.checkpoint_on_device(data, kUnit);
  const std::uint64_t on_device_bytes =
      dev.stats().bytes_d2h + dev.stats().bytes_h2d;
  EXPECT_EQ(on_device_bytes, p.r * kUnit);

  dev.reset_stats();
  codec.checkpoint_via_host(data, kUnit);
  const std::uint64_t via_host_bytes =
      dev.stats().bytes_d2h + dev.stats().bytes_h2d;
  EXPECT_EQ(via_host_bytes, p.k * kUnit);

  EXPECT_DOUBLE_EQ(static_cast<double>(via_host_bytes) / on_device_bytes,
                   static_cast<double>(p.k) / p.r);
}

TEST(DeviceCodec, ScheduleSwitchKeepsResults) {
  Device dev;
  const ec::CodeParams p{6, 2, 8};
  DeviceCodec codec(dev, p);
  DeviceBuffer data = upload_data(dev, p, 4);
  const auto baseline = codec.checkpoint_on_device(data, kUnit);

  tensor::Schedule s;
  s.tile_m = 8;
  s.tile_n = 32;
  s.block_n = 256;
  codec.set_schedule(s);
  EXPECT_EQ(codec.checkpoint_on_device(data, kUnit), baseline);

  tensor::Schedule bad;
  bad.tile_m = 3;
  EXPECT_THROW(codec.set_schedule(bad), std::invalid_argument);
}

TEST(DeviceCodec, Validation) {
  Device dev;
  const ec::CodeParams p{4, 2, 8};
  DeviceCodec codec(dev, p);
  DeviceBuffer data = dev.alloc(p.k * kUnit);
  DeviceBuffer parity = dev.alloc(p.r * kUnit);
  EXPECT_THROW(codec.encode_on_device(data, parity, kUnit - 1),
               std::invalid_argument);
  DeviceBuffer wrong = dev.alloc(kUnit);
  EXPECT_THROW(codec.encode_on_device(wrong, parity, kUnit),
               std::invalid_argument);
  EXPECT_THROW(codec.encode_on_device(data, wrong, kUnit),
               std::invalid_argument);
  EXPECT_THROW(codec.checkpoint_via_host(wrong, kUnit),
               std::invalid_argument);
}

}  // namespace
}  // namespace tvmec::accel
