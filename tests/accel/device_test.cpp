#include "accel/device.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "tensor/kernel.h"

namespace tvmec::accel {
namespace {

TEST(Device, Construction) {
  Device dev("gpu0", 16.0);
  EXPECT_EQ(dev.name(), "gpu0");
  EXPECT_THROW(Device("bad", 0.0), std::invalid_argument);
  EXPECT_THROW(Device("bad", -1.0), std::invalid_argument);
}

TEST(Device, AllocZeroedAndCounted) {
  Device dev;
  const DeviceBuffer buf = dev.alloc(128);
  EXPECT_TRUE(buf.valid());
  EXPECT_EQ(buf.size(), 128u);
  EXPECT_EQ(dev.stats().allocations, 1u);
  EXPECT_THROW(dev.alloc(0), std::invalid_argument);
  EXPECT_FALSE(DeviceBuffer().valid());
}

TEST(Device, TransfersRoundTripAndMeter) {
  Device dev("sim0", 10.0);  // 10 GB/s modeled
  const auto src = testutil::random_bytes(4096, 1);
  DeviceBuffer buf = dev.alloc(4096);
  dev.copy_to_device(buf, src.span());
  std::vector<std::uint8_t> back(4096);
  dev.copy_to_host(back, buf);
  EXPECT_TRUE(std::equal(src.span().begin(), src.span().end(), back.begin()));

  EXPECT_EQ(dev.stats().bytes_h2d, 4096u);
  EXPECT_EQ(dev.stats().bytes_d2h, 4096u);
  EXPECT_DOUBLE_EQ(dev.stats().modeled_transfer_seconds,
                   2 * 4096.0 / 10e9);
}

TEST(Device, OnDeviceCopyIsNotInterconnectTraffic) {
  Device dev;
  const auto src = testutil::random_bytes(256, 2);
  DeviceBuffer a = dev.alloc(256), b = dev.alloc(256);
  dev.copy_to_device(a, src.span());
  dev.reset_stats();
  dev.copy_on_device(b, a);
  EXPECT_EQ(dev.stats().bytes_h2d, 0u);
  EXPECT_EQ(dev.stats().bytes_d2h, 0u);
  std::vector<std::uint8_t> back(256);
  dev.copy_to_host(back, b);
  EXPECT_TRUE(std::equal(src.span().begin(), src.span().end(), back.begin()));
}

TEST(Device, SizeMismatchesThrow) {
  Device dev;
  DeviceBuffer buf = dev.alloc(64);
  const auto src = testutil::random_bytes(32, 3);
  EXPECT_THROW(dev.copy_to_device(buf, src.span()), std::invalid_argument);
  std::vector<std::uint8_t> small(32);
  EXPECT_THROW(dev.copy_to_host(small, buf), std::invalid_argument);
}

TEST(Device, ForeignBuffersRejected) {
  Device a("a"), b("b");
  DeviceBuffer on_a = a.alloc(64);
  std::vector<std::uint8_t> host(64);
  EXPECT_THROW(b.copy_to_host(host, on_a), std::invalid_argument);
  DeviceBuffer on_b = b.alloc(64);
  EXPECT_THROW(b.copy_on_device(on_b, on_a), std::invalid_argument);
}

TEST(Device, KernelMatchesHostExecution) {
  Device dev;
  const std::size_t m = 16, n = 64, k = 40;
  // Host-side reference operands.
  tensor::AlignedBuffer<std::uint64_t> a(m * k), b(k * n), ref(m * n);
  std::mt19937_64 rng(4);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = (rng() & 1) ? ~std::uint64_t{0} : 0;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng();
  tensor::gemm_naive_xorand({a.data(), m, k, k}, {b.data(), k, n, n},
                            {ref.data(), m, n, n});

  DeviceBuffer da = dev.alloc(m * k * 8), db = dev.alloc(k * n * 8),
               dc = dev.alloc(m * n * 8);
  dev.copy_to_device(
      da, {reinterpret_cast<const std::uint8_t*>(a.data()), m * k * 8});
  dev.copy_to_device(
      db, {reinterpret_cast<const std::uint8_t*>(b.data()), k * n * 8});
  tensor::Schedule s;
  s.tile_m = 4;
  s.tile_n = 16;
  dev.launch_xorand_gemm(da, db, dc, m, n, k, s);
  EXPECT_EQ(dev.stats().kernel_launches, 1u);

  std::vector<std::uint8_t> out(m * n * 8);
  dev.copy_to_host(out, dc);
  EXPECT_EQ(std::memcmp(out.data(), ref.data(), out.size()), 0);
}

TEST(Device, KernelValidatesShapes) {
  Device dev;
  DeviceBuffer a = dev.alloc(64), b = dev.alloc(64), c = dev.alloc(64);
  tensor::Schedule s = tensor::default_schedule();
  // 4x4x4 of u64 needs 128 bytes per operand, buffers are 64.
  EXPECT_THROW(dev.launch_xorand_gemm(a, b, c, 4, 4, 4, s),
               std::invalid_argument);
}

}  // namespace
}  // namespace tvmec::accel
