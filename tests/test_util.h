#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "tensor/buffer.h"

/// Shared helpers for the test suite.
namespace tvmec::testutil {

/// Deterministic random bytes (seeded per call site for reproducibility).
inline tensor::AlignedBuffer<std::uint8_t> random_bytes(std::size_t size,
                                                        std::uint64_t seed) {
  tensor::AlignedBuffer<std::uint8_t> buf(size);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < size; ++i)
    buf[i] = static_cast<std::uint8_t>(rng());
  return buf;
}

inline std::vector<std::uint8_t> random_vector(std::size_t size,
                                               std::uint64_t seed) {
  std::vector<std::uint8_t> v(size);
  std::mt19937_64 rng(seed);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

/// All C(n, e) erasure patterns of exactly e ids out of [0, n).
inline std::vector<std::vector<std::size_t>> erasure_patterns(std::size_t n,
                                                              std::size_t e) {
  std::vector<std::vector<std::size_t>> out;
  std::vector<std::size_t> pattern(e);
  const auto recurse = [&](auto&& self, std::size_t start,
                           std::size_t depth) -> void {
    if (depth == e) {
      out.push_back(pattern);
      return;
    }
    for (std::size_t i = start; i < n; ++i) {
      pattern[depth] = i;
      self(self, i + 1, depth + 1);
    }
  };
  recurse(recurse, 0, 0);
  return out;
}

}  // namespace tvmec::testutil
