#include <gtest/gtest.h>

#include "gf/gf.h"

/// Exhaustive verification of the small fields: every operation on every
/// element (or element pair) is checked against the carry-less reference.
/// GF(2^4) is fully exhaustive over pairs; GF(2^8) is exhaustive over
/// pairs too (65536 products); GF(2^16) is covered by the sampled
/// property tests in gf_test.cpp.
namespace tvmec::gf {
namespace {

TEST(ExhaustiveW4, EveryProductMatchesReference) {
  const Field& f = Field::of(4);
  for (std::uint32_t a = 0; a < 16; ++a)
    for (std::uint32_t b = 0; b < 16; ++b)
      ASSERT_EQ(f.mul(static_cast<elem_t>(a), static_cast<elem_t>(b)),
                mul_slow(4, static_cast<elem_t>(a), static_cast<elem_t>(b)))
          << a << "*" << b;
}

TEST(ExhaustiveW4, EveryDivisionInvertsMultiplication) {
  const Field& f = Field::of(4);
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = 1; b < 16; ++b) {
      const elem_t q = f.div(static_cast<elem_t>(a), static_cast<elem_t>(b));
      ASSERT_EQ(f.mul(q, static_cast<elem_t>(b)), a);
    }
  }
}

TEST(ExhaustiveW4, ElementOrderDividesGroupOrder) {
  // Lagrange: the multiplicative order of every nonzero element divides
  // 15; and alpha (=2) must have full order (primitive polynomial).
  const Field& f = Field::of(4);
  for (std::uint32_t a = 1; a < 16; ++a) {
    elem_t x = static_cast<elem_t>(a);
    unsigned order = 1;
    while (x != 1) {
      x = f.mul(x, static_cast<elem_t>(a));
      ++order;
      ASSERT_LE(order, 15u);
    }
    EXPECT_EQ(15 % order, 0u) << "element " << a;
  }
  elem_t x = 2;
  unsigned order = 1;
  while (x != 1) {
    x = f.mul(x, 2);
    ++order;
  }
  EXPECT_EQ(order, 15u);
}

TEST(ExhaustiveW8, EveryProductMatchesReference) {
  const Field& f = Field::of(8);
  for (std::uint32_t a = 0; a < 256; ++a)
    for (std::uint32_t b = 0; b < 256; ++b)
      ASSERT_EQ(f.mul(static_cast<elem_t>(a), static_cast<elem_t>(b)),
                mul_slow(8, static_cast<elem_t>(a), static_cast<elem_t>(b)))
          << a << "*" << b;
}

TEST(ExhaustiveW8, FrobeniusIsLinear) {
  // x -> x^2 is additive in characteristic 2: (a+b)^2 = a^2 + b^2.
  const Field& f = Field::of(8);
  for (std::uint32_t a = 0; a < 256; ++a)
    for (std::uint32_t b = 0; b < 256; ++b) {
      const elem_t lhs = f.mul(static_cast<elem_t>(a ^ b),
                               static_cast<elem_t>(a ^ b));
      const elem_t rhs = static_cast<elem_t>(
          f.mul(static_cast<elem_t>(a), static_cast<elem_t>(a)) ^
          f.mul(static_cast<elem_t>(b), static_cast<elem_t>(b)));
      ASSERT_EQ(lhs, rhs);
    }
}

TEST(ExhaustiveW16, SampledAgainstReferenceOnStructuredInputs) {
  // Not all 2^32 pairs, but every pair among the "interesting" values:
  // low, high, powers of two, and the polynomial's bit patterns.
  const Field& f = Field::of(16);
  std::vector<elem_t> vals = {0, 1, 2, 3, 0x000F, 0x00FF, 0x0FFF,
                              0xFFFF, 0x8000, 0x8001, 0x100B & 0xFFFF};
  for (unsigned b = 0; b < 16; ++b) vals.push_back(static_cast<elem_t>(1u << b));
  for (const elem_t a : vals)
    for (const elem_t b : vals)
      ASSERT_EQ(f.mul(a, b), mul_slow(16, a, b)) << a << "*" << b;
}

}  // namespace
}  // namespace tvmec::gf
