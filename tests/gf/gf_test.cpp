#include "gf/gf.h"

#include <gtest/gtest.h>

#include <random>

namespace tvmec::gf {
namespace {

class FieldTest : public ::testing::TestWithParam<unsigned> {
 protected:
  const Field& field() const { return Field::of(GetParam()); }
};

TEST_P(FieldTest, OrderMatchesW) {
  EXPECT_EQ(field().order(), 1u << GetParam());
  EXPECT_EQ(field().max_elem(), (1u << GetParam()) - 1);
  EXPECT_EQ(field().w(), GetParam());
}

TEST_P(FieldTest, MultiplicativeIdentity) {
  const Field& f = field();
  for (std::uint32_t a = 0; a < f.order(); ++a)
    EXPECT_EQ(f.mul(static_cast<elem_t>(a), 1), a);
}

TEST_P(FieldTest, ZeroAnnihilates) {
  const Field& f = field();
  for (std::uint32_t a = 0; a < f.order(); ++a) {
    EXPECT_EQ(f.mul(static_cast<elem_t>(a), 0), 0);
    EXPECT_EQ(f.mul(0, static_cast<elem_t>(a)), 0);
  }
}

TEST_P(FieldTest, MulMatchesCarrylessReference) {
  const Field& f = field();
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int i = 0; i < 5000; ++i) {
    const elem_t a = static_cast<elem_t>(dist(rng));
    const elem_t b = static_cast<elem_t>(dist(rng));
    EXPECT_EQ(f.mul(a, b), mul_slow(GetParam(), a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST_P(FieldTest, MulIsCommutative) {
  const Field& f = field();
  std::mt19937_64 rng(2);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int i = 0; i < 2000; ++i) {
    const elem_t a = static_cast<elem_t>(dist(rng));
    const elem_t b = static_cast<elem_t>(dist(rng));
    EXPECT_EQ(f.mul(a, b), f.mul(b, a));
  }
}

TEST_P(FieldTest, MulIsAssociative) {
  const Field& f = field();
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int i = 0; i < 2000; ++i) {
    const elem_t a = static_cast<elem_t>(dist(rng));
    const elem_t b = static_cast<elem_t>(dist(rng));
    const elem_t c = static_cast<elem_t>(dist(rng));
    EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
  }
}

TEST_P(FieldTest, MulDistributesOverAdd) {
  const Field& f = field();
  std::mt19937_64 rng(4);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int i = 0; i < 2000; ++i) {
    const elem_t a = static_cast<elem_t>(dist(rng));
    const elem_t b = static_cast<elem_t>(dist(rng));
    const elem_t c = static_cast<elem_t>(dist(rng));
    EXPECT_EQ(f.mul(a, Field::add(b, c)),
              Field::add(f.mul(a, b), f.mul(a, c)));
  }
}

TEST_P(FieldTest, InverseRoundTrip) {
  const Field& f = field();
  for (std::uint32_t a = 1; a < f.order(); ++a) {
    const elem_t inv = f.inv(static_cast<elem_t>(a));
    EXPECT_EQ(f.mul(static_cast<elem_t>(a), inv), 1) << "a=" << a;
  }
}

TEST_P(FieldTest, DivisionIsMulByInverse) {
  const Field& f = field();
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int i = 0; i < 2000; ++i) {
    const elem_t a = static_cast<elem_t>(dist(rng));
    const elem_t b = static_cast<elem_t>(dist(rng) | 1u);  // nonzero
    EXPECT_EQ(f.div(a, b), f.mul(a, f.inv(b)));
    EXPECT_EQ(f.mul(f.div(a, b), b), a);
  }
}

TEST_P(FieldTest, LogExpRoundTrip) {
  const Field& f = field();
  for (std::uint32_t a = 1; a < f.order(); ++a)
    EXPECT_EQ(f.exp(f.log(static_cast<elem_t>(a))), a);
}

TEST_P(FieldTest, GeneratorCyclesWholeGroup) {
  const Field& f = field();
  std::vector<bool> seen(f.order(), false);
  for (std::uint32_t e = 0; e < f.max_elem(); ++e) {
    const elem_t v = f.exp(e);
    EXPECT_FALSE(seen[v]) << "repeat at e=" << e;
    seen[v] = true;
  }
}

TEST_P(FieldTest, PowMatchesRepeatedMul) {
  const Field& f = field();
  std::mt19937_64 rng(6);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int i = 0; i < 200; ++i) {
    const elem_t a = static_cast<elem_t>(dist(rng));
    elem_t expect = 1;
    for (std::uint32_t e = 0; e < 16; ++e) {
      EXPECT_EQ(f.pow(a, e), expect) << "a=" << a << " e=" << e;
      expect = f.mul(expect, a);
    }
  }
}

TEST_P(FieldTest, DomainErrors) {
  const Field& f = field();
  EXPECT_THROW(f.inv(0), std::domain_error);
  EXPECT_THROW(f.div(1, 0), std::domain_error);
  EXPECT_THROW(f.log(0), std::domain_error);
}

TEST_P(FieldTest, RegionMulMatchesScalar) {
  const Field& f = field();
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  std::vector<std::uint8_t> src(64), dst(64);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  for (int trial = 0; trial < 50; ++trial) {
    const elem_t c = static_cast<elem_t>(dist(rng));
    f.region_mul(c, src, dst);
    switch (f.w()) {
      case 8:
        for (std::size_t i = 0; i < src.size(); ++i)
          ASSERT_EQ(dst[i], f.mul(c, src[i]));
        break;
      case 4:
        for (std::size_t i = 0; i < src.size(); ++i) {
          ASSERT_EQ(dst[i] & 0x0F, f.mul(c, src[i] & 0x0F));
          ASSERT_EQ(dst[i] >> 4, f.mul(c, src[i] >> 4));
        }
        break;
      case 16:
        for (std::size_t i = 0; i < src.size(); i += 2) {
          const elem_t v = static_cast<elem_t>(src[i] | (src[i + 1] << 8));
          const elem_t p = f.mul(c, v);
          ASSERT_EQ(dst[i], p & 0xFF);
          ASSERT_EQ(dst[i + 1], p >> 8);
        }
        break;
    }
  }
}

TEST_P(FieldTest, RegionMulXorAccumulates) {
  const Field& f = field();
  std::mt19937_64 rng(8);
  std::uniform_int_distribution<std::uint32_t> dist(1, f.max_elem());
  std::vector<std::uint8_t> src(32), acc(32, 0), expect(32);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  const elem_t c1 = static_cast<elem_t>(dist(rng));
  const elem_t c2 = static_cast<elem_t>(dist(rng));
  f.region_mul_xor(c1, src, acc);
  f.region_mul_xor(c2, src, acc);
  // acc == (c1 ^+^ c2) * src since XOR accumulation is field addition.
  f.region_mul(Field::add(c1, c2), src, expect);
  EXPECT_EQ(acc, expect);
}

TEST_P(FieldTest, RegionSizeMismatchThrows) {
  std::vector<std::uint8_t> a(16), b(8);
  EXPECT_THROW(field().region_mul(1, a, b), std::invalid_argument);
  EXPECT_THROW(field().region_mul_xor(1, a, b), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(AllFields, FieldTest, ::testing::Values(4u, 8u, 16u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(FieldConstruction, RejectsUnsupportedW) {
  EXPECT_THROW(Field f(3), std::invalid_argument);
  EXPECT_THROW(Field f(32), std::invalid_argument);
  EXPECT_THROW(Field::of(5), std::invalid_argument);
}

TEST(FieldConstruction, SingletonIdentity) {
  EXPECT_EQ(&Field::of(8), &Field::of(8));
  EXPECT_NE(&Field::of(8), &Field::of(4));
}

TEST(SplitTables, MatchFullMultiplication) {
  const Field& f = Field::of(8);
  for (std::uint32_t c = 0; c < 256; ++c) {
    const SplitTables8 t = f.split_tables(static_cast<std::uint8_t>(c));
    for (std::uint32_t b = 0; b < 256; ++b)
      ASSERT_EQ(t.mul(static_cast<std::uint8_t>(b)),
                f.mul(static_cast<elem_t>(c), static_cast<elem_t>(b)))
          << "c=" << c << " b=" << b;
  }
}

TEST(SplitTables, OnlyDefinedForW8) {
  EXPECT_THROW(Field::of(4).split_tables(1), std::logic_error);
  EXPECT_THROW(Field::of(16).split_tables(1), std::logic_error);
}

TEST(MulSlow, RejectsBadW) {
  EXPECT_THROW(mul_slow(7, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace tvmec::gf
