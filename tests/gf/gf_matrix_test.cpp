#include "gf/gf_matrix.h"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "gf/bitmatrix.h"

namespace tvmec::gf {
namespace {

Matrix random_matrix(const Field& f, std::size_t rows, std::size_t cols,
                     std::uint64_t seed) {
  Matrix m(f, rows, cols);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      m.set(i, j, static_cast<elem_t>(dist(rng)));
  return m;
}

TEST(Matrix, ConstructionAndIndexing) {
  const Field& f = Field::of(8);
  Matrix m(f, 3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.at(2, 3), 0);
  m.set(2, 3, 7);
  EXPECT_EQ(m.at(2, 3), 7);
  EXPECT_THROW(m.at(3, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 4, 1), std::out_of_range);
  // Zero-dimension matrices are legal: an r == 0 code's parity block.
  const Matrix empty(f, 0, 4);
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.cols(), 4u);
}

TEST(Matrix, IdentityIsMulNeutral) {
  const Field& f = Field::of(8);
  const Matrix m = random_matrix(f, 5, 5, 10);
  const Matrix id = Matrix::identity(f, 5);
  EXPECT_EQ(m.mul(id), m);
  EXPECT_EQ(id.mul(m), m);
}

TEST(Matrix, MulShapeMismatchThrows) {
  const Field& f = Field::of(8);
  const Matrix a = random_matrix(f, 3, 4, 11);
  const Matrix b = random_matrix(f, 3, 4, 12);
  EXPECT_THROW(a.mul(b), std::invalid_argument);
}

TEST(Matrix, MulVecAgainstManual) {
  const Field& f = Field::of(8);
  const Matrix m = random_matrix(f, 4, 3, 13);
  const std::vector<elem_t> x = {5, 9, 200};
  const std::vector<elem_t> y = m.mul_vec(x);
  for (std::size_t i = 0; i < 4; ++i) {
    elem_t acc = 0;
    for (std::size_t j = 0; j < 3; ++j)
      acc = Field::add(acc, f.mul(m.at(i, j), x[j]));
    EXPECT_EQ(y[i], acc);
  }
}

class MatrixFieldTest : public ::testing::TestWithParam<unsigned> {
 protected:
  const Field& field() const { return Field::of(GetParam()); }
};

TEST_P(MatrixFieldTest, InverseRoundTrip) {
  const Field& f = field();
  std::mt19937_64 seed_rng(GetParam());
  int inverted = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Matrix m = random_matrix(f, 6, 6, seed_rng());
    const auto inv = m.inverted();
    if (!inv) continue;  // singular random matrices happen
    ++inverted;
    EXPECT_EQ(m.mul(*inv), Matrix::identity(f, 6));
    EXPECT_EQ(inv->mul(m), Matrix::identity(f, 6));
  }
  EXPECT_GT(inverted, 10);  // random GF matrices are usually invertible
}

TEST_P(MatrixFieldTest, SingularMatrixReturnsNullopt) {
  const Field& f = field();
  Matrix m = random_matrix(f, 4, 4, 99);
  // Duplicate a row: guaranteed singular.
  for (std::size_t j = 0; j < 4; ++j) m.set(3, j, m.at(0, j));
  EXPECT_FALSE(m.inverted().has_value());
}

TEST_P(MatrixFieldTest, VandermondeTopSquareInvertible) {
  const Field& f = field();
  const Matrix v = Matrix::vandermonde(f, 8, 5);
  std::vector<std::size_t> ids(5);
  std::iota(ids.begin(), ids.end(), 0);
  EXPECT_TRUE(v.select_rows(ids).inverted().has_value());
}

TEST_P(MatrixFieldTest, CauchyAllEntriesNonzero) {
  const Matrix c = Matrix::cauchy(field(), 4, 8);
  for (std::size_t i = 0; i < c.rows(); ++i)
    for (std::size_t j = 0; j < c.cols(); ++j) EXPECT_NE(c.at(i, j), 0);
}

INSTANTIATE_TEST_SUITE_P(AllFields, MatrixFieldTest,
                         ::testing::Values(4u, 8u, 16u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

struct RsShape {
  std::size_t k;
  std::size_t r;
  unsigned w;
};

class GeneratorMdsTest : public ::testing::TestWithParam<RsShape> {};

/// The defining MDS property: every k-row subset of the generator is
/// invertible, i.e. any k surviving units reconstruct the data.
void expect_mds(const Matrix& gen, std::size_t k) {
  const std::size_t n = gen.rows();
  std::vector<std::size_t> ids(k);
  // Enumerate all C(n, k) subsets.
  const auto recurse = [&](auto&& self, std::size_t start,
                           std::size_t depth) -> void {
    if (depth == k) {
      EXPECT_TRUE(gen.select_rows(ids).inverted().has_value())
          << "non-invertible survivor set";
      return;
    }
    for (std::size_t i = start; i < n; ++i) {
      ids[depth] = i;
      self(self, i + 1, depth + 1);
    }
  };
  recurse(recurse, 0, 0);
}

TEST_P(GeneratorMdsTest, VandermondeSystematicIsMds) {
  const auto& p = GetParam();
  const Matrix gen = rs_generator_vandermonde(Field::of(p.w), p.k, p.r);
  ASSERT_EQ(gen.rows(), p.k + p.r);
  ASSERT_EQ(gen.cols(), p.k);
  // Systematic: top block is the identity.
  for (std::size_t i = 0; i < p.k; ++i)
    for (std::size_t j = 0; j < p.k; ++j)
      ASSERT_EQ(gen.at(i, j), i == j ? 1 : 0);
  expect_mds(gen, p.k);
}

TEST_P(GeneratorMdsTest, CauchyIsMds) {
  const auto& p = GetParam();
  const Matrix gen =
      rs_generator_cauchy(Field::of(p.w), p.k, p.r, /*minimize_ones=*/false);
  expect_mds(gen, p.k);
}

TEST_P(GeneratorMdsTest, CauchyGoodIsMds) {
  const auto& p = GetParam();
  const Matrix gen =
      rs_generator_cauchy(Field::of(p.w), p.k, p.r, /*minimize_ones=*/true);
  expect_mds(gen, p.k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorMdsTest,
    ::testing::Values(RsShape{4, 2, 8}, RsShape{5, 3, 8}, RsShape{6, 2, 8},
                      RsShape{4, 2, 4}, RsShape{5, 2, 16}, RsShape{8, 2, 8}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "r" +
             std::to_string(info.param.r) + "w" +
             std::to_string(info.param.w);
    });

TEST(GeneratorConstruction, CauchyGoodReducesBitmatrixOnes) {
  const Field& f = Field::of(8);
  const Matrix plain = Matrix::cauchy(f, 4, 10);
  const Matrix good = Matrix::cauchy_good(f, 4, 10);
  const std::size_t plain_ones = BitMatrix::from_gf_matrix(plain).ones();
  const std::size_t good_ones = BitMatrix::from_gf_matrix(good).ones();
  EXPECT_LE(good_ones, plain_ones);
  // For this shape the optimization is known to find real savings.
  EXPECT_LT(good_ones, plain_ones);
}

TEST(GeneratorConstruction, CauchyBestAtLeastAsSparseAsGood) {
  const Field& f = Field::of(8);
  const Matrix good = Matrix::cauchy_good(f, 4, 10);
  const Matrix best = Matrix::cauchy_best(f, 4, 10, /*trials=*/24, /*seed=*/7);
  EXPECT_LE(BitMatrix::from_gf_matrix(best).ones(),
            BitMatrix::from_gf_matrix(good).ones());
}

TEST(GeneratorConstruction, CauchyBestIsMdsAndDeterministic) {
  const Field& f = Field::of(8);
  const Matrix a = Matrix::cauchy_best(f, 3, 5, 8, 42);
  const Matrix b = Matrix::cauchy_best(f, 3, 5, 8, 42);
  EXPECT_EQ(a, b);
  const Matrix gen = Matrix::identity(f, 5).vstack(a);
  expect_mds(gen, 5);
}

TEST(GeneratorConstruction, CauchyBestValidation) {
  EXPECT_THROW(Matrix::cauchy_best(Field::of(4), 9, 8),
               std::invalid_argument);
  EXPECT_THROW(Matrix::cauchy_best(Field::of(8), 2, 4, /*trials=*/0),
               std::invalid_argument);
}

TEST(GeneratorConstruction, TooLargeForFieldThrows) {
  EXPECT_THROW(rs_generator_vandermonde(Field::of(4), 14, 4),
               std::invalid_argument);
  EXPECT_THROW(Matrix::cauchy(Field::of(4), 9, 8), std::invalid_argument);
}

TEST(Matrix, SelectRowsAndVstack) {
  const Field& f = Field::of(8);
  const Matrix a = random_matrix(f, 3, 4, 21);
  const Matrix b = random_matrix(f, 2, 4, 22);
  const Matrix stacked = a.vstack(b);
  ASSERT_EQ(stacked.rows(), 5u);
  const std::vector<std::size_t> bottom = {3, 4};
  EXPECT_EQ(stacked.select_rows(bottom), b);
  EXPECT_THROW(a.vstack(random_matrix(f, 2, 3, 23)), std::invalid_argument);
  const std::vector<std::size_t> bad = {9};
  EXPECT_THROW(a.select_rows(bad), std::out_of_range);
}

}  // namespace
}  // namespace tvmec::gf
