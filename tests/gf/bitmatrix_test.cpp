#include "gf/bitmatrix.h"

#include <gtest/gtest.h>

#include <random>

namespace tvmec::gf {
namespace {

TEST(BitMatrix, ConstructionAndBits) {
  BitMatrix m(3, 70);  // spans two words per row
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 70u);
  EXPECT_EQ(m.words_per_row(), 2u);
  EXPECT_FALSE(m.get(2, 69));
  m.set(2, 69, true);
  EXPECT_TRUE(m.get(2, 69));
  m.set(2, 69, false);
  EXPECT_FALSE(m.get(2, 69));
  EXPECT_THROW(m.get(3, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 70, true), std::out_of_range);
  // Zero-dimension matrices are legal: the parity bitmatrix of an
  // r == 0 code has no rows.
  const BitMatrix empty(0, 1);
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.ones(), 0u);
}

TEST(BitMatrix, OnesCounting) {
  BitMatrix m(2, 100);
  EXPECT_EQ(m.ones(), 0u);
  m.set(0, 0, true);
  m.set(0, 64, true);
  m.set(1, 99, true);
  EXPECT_EQ(m.ones(), 3u);
  EXPECT_EQ(m.row_ones(0), 2u);
  EXPECT_EQ(m.row_ones(1), 1u);
}

TEST(BitMatrix, IdentityMulIsNeutral) {
  std::mt19937_64 rng(1);
  BitMatrix m(8, 8);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) m.set(i, j, rng() & 1);
  const BitMatrix id = BitMatrix::identity(8);
  EXPECT_EQ(m.mul(id), m);
  EXPECT_EQ(id.mul(m), m);
}

class ElementBlockTest : public ::testing::TestWithParam<unsigned> {};

/// The defining property of the Bloemer/Plank expansion: multiplying the
/// bit-vector of b by the block of e yields the bit-vector of e*b.
TEST_P(ElementBlockTest, BlockActionMatchesFieldMul) {
  const unsigned w = GetParam();
  const Field& f = Field::of(w);
  std::mt19937_64 rng(w);
  std::uniform_int_distribution<std::uint32_t> dist(0, f.max_elem());
  for (int trial = 0; trial < 300; ++trial) {
    const elem_t e = static_cast<elem_t>(dist(rng));
    const elem_t b = static_cast<elem_t>(dist(rng));
    const BitMatrix block = BitMatrix::element_block(f, e);
    std::vector<std::uint8_t> b_bits(w);
    for (unsigned i = 0; i < w; ++i) b_bits[i] = (b >> i) & 1;
    const std::vector<std::uint8_t> prod_bits = block.mul_vec(b_bits);
    elem_t prod = 0;
    for (unsigned i = 0; i < w; ++i)
      prod = static_cast<elem_t>(prod | (prod_bits[i] << i));
    ASSERT_EQ(prod, f.mul(e, b)) << "e=" << e << " b=" << b;
  }
}

TEST_P(ElementBlockTest, BlockOfOneIsIdentity) {
  const unsigned w = GetParam();
  EXPECT_EQ(BitMatrix::element_block(Field::of(w), 1), BitMatrix::identity(w));
}

TEST_P(ElementBlockTest, BlockOfNonzeroIsInvertible) {
  const unsigned w = GetParam();
  const Field& f = Field::of(w);
  std::mt19937_64 rng(w + 100);
  std::uniform_int_distribution<std::uint32_t> dist(1, f.max_elem());
  for (int trial = 0; trial < 50; ++trial) {
    const elem_t e = static_cast<elem_t>(dist(rng));
    const auto inv = BitMatrix::element_block(f, e).inverted();
    ASSERT_TRUE(inv.has_value());
    // The inverse block must be the block of the inverse element.
    EXPECT_EQ(*inv, BitMatrix::element_block(f, f.inv(e)));
  }
}

INSTANTIATE_TEST_SUITE_P(AllFields, ElementBlockTest,
                         ::testing::Values(4u, 8u, 16u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(BitMatrixExpansion, MatchesGfMatrixAction) {
  const Field& f = Field::of(8);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  Matrix m(f, 3, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      m.set(i, j, static_cast<elem_t>(dist(rng)));
  const BitMatrix bits = BitMatrix::from_gf_matrix(m);
  ASSERT_EQ(bits.rows(), 24u);
  ASSERT_EQ(bits.cols(), 40u);

  for (int trial = 0; trial < 100; ++trial) {
    std::vector<elem_t> x(5);
    for (auto& v : x) v = static_cast<elem_t>(dist(rng));
    const std::vector<elem_t> y = m.mul_vec(x);
    // The bit-level product must equal the element-level product bitwise.
    std::vector<std::uint8_t> x_bits(40);
    for (std::size_t j = 0; j < 5; ++j)
      for (unsigned b = 0; b < 8; ++b) x_bits[j * 8 + b] = (x[j] >> b) & 1;
    const std::vector<std::uint8_t> y_bits = bits.mul_vec(x_bits);
    for (std::size_t i = 0; i < 3; ++i)
      for (unsigned b = 0; b < 8; ++b)
        ASSERT_EQ(y_bits[i * 8 + b], (y[i] >> b) & 1)
            << "unit " << i << " bit " << b;
  }
}

TEST(BitMatrixInverse, RoundTripOnExpandedMatrices) {
  const Field& f = Field::of(8);
  std::mt19937_64 rng(8);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  int tested = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Matrix m(f, 4, 4);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 4; ++j)
        m.set(i, j, static_cast<elem_t>(dist(rng)));
    const auto gf_inv = m.inverted();
    if (!gf_inv) continue;
    ++tested;
    const BitMatrix bits = BitMatrix::from_gf_matrix(m);
    const auto bit_inv = bits.inverted();
    ASSERT_TRUE(bit_inv.has_value());
    // Inversion commutes with expansion.
    EXPECT_EQ(*bit_inv, BitMatrix::from_gf_matrix(*gf_inv));
    EXPECT_EQ(bits.mul(*bit_inv), BitMatrix::identity(32));
  }
  EXPECT_GT(tested, 5);
}

TEST(BitMatrixInverse, SingularReturnsNullopt) {
  BitMatrix m(4, 4);  // zero matrix
  EXPECT_FALSE(m.inverted().has_value());
}

TEST(BitMatrix, SelectRows) {
  BitMatrix m(4, 10);
  m.set(1, 3, true);
  m.set(3, 9, true);
  const std::vector<std::size_t> ids = {3, 1};
  const BitMatrix sel = m.select_rows(ids);
  ASSERT_EQ(sel.rows(), 2u);
  EXPECT_TRUE(sel.get(0, 9));
  EXPECT_TRUE(sel.get(1, 3));
  EXPECT_EQ(sel.ones(), 2u);
  const std::vector<std::size_t> bad = {4};
  EXPECT_THROW(m.select_rows(bad), std::out_of_range);
}

TEST(RowBitmatrixOnes, MatchesFullExpansion) {
  const Field& f = Field::of(8);
  std::mt19937_64 rng(9);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  Matrix m(f, 3, 6);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      m.set(i, j, static_cast<elem_t>(dist(rng)));
  const BitMatrix bits = BitMatrix::from_gf_matrix(m);
  for (std::size_t i = 0; i < 3; ++i) {
    std::size_t expect = 0;
    for (unsigned b = 0; b < 8; ++b) expect += bits.row_ones(i * 8 + b);
    EXPECT_EQ(row_bitmatrix_ones(m, i), expect);
  }
}

}  // namespace
}  // namespace tvmec::gf
