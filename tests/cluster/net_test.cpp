#include "cluster/net.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "storage/fault_injector.h"

namespace tvmec::cluster {
namespace {

TEST(NetLink, DomainsAndClientEndpoint) {
  Network net(6, 3);
  EXPECT_EQ(net.num_nodes(), 6u);
  EXPECT_EQ(net.num_domains(), 3u);
  EXPECT_EQ(net.client(), 6u);
  EXPECT_EQ(net.domain_of(0), 0u);
  EXPECT_EQ(net.domain_of(4), 1u);
  EXPECT_EQ(net.domain_of(5), 2u);
  // The client lives in its own reserved domain.
  EXPECT_EQ(net.domain_of(net.client()), 3u);
}

TEST(NetLink, RejectsDegenerateShapes) {
  EXPECT_THROW(Network(0, 1), std::invalid_argument);
  EXPECT_THROW(Network(4, 0), std::invalid_argument);
  EXPECT_THROW(Network(4, 5), std::invalid_argument);
  NetConfig cfg;
  cfg.bytes_per_us = 0;
  EXPECT_THROW(Network(4, 2, cfg), std::invalid_argument);
  Network net(4, 2);
  EXPECT_THROW(net.send(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(net.send(0, 5, 1), std::invalid_argument);
}

TEST(NetLink, LatencyIsBasePlusBandwidthPlusDomainSurcharge) {
  NetConfig cfg;
  cfg.base_latency_us = 100;
  cfg.cross_domain_extra_us = 300;
  cfg.bytes_per_us = 10;
  cfg.jitter_us = 0;
  Network net(4, 2, cfg);
  // Nodes 0 and 2 share domain 0: no surcharge.
  EXPECT_EQ(net.send(0, 2, 1000).latency_us, 100u + 100u);
  // Nodes 0 and 1 sit in different domains.
  EXPECT_EQ(net.send(0, 1, 1000).latency_us, 100u + 100u + 300u);
  // Node -> client always crosses into the client's reserved domain.
  EXPECT_EQ(net.send(0, net.client(), 1000).latency_us, 100u + 100u + 300u);
}

TEST(NetLink, AccountingBalancesOnCleanTraffic) {
  Network net(4, 2);
  for (int i = 0; i < 20; ++i) {
    const SendResult r = net.send(i % 4, (i + 1) % 4, 4096);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.copies, 1);
  }
  const NetStats& s = net.stats();
  EXPECT_EQ(s.messages_sent, 20u);
  EXPECT_EQ(s.messages_delivered, 20u);
  EXPECT_EQ(s.bytes_sent, 20u * 4096u);
  EXPECT_EQ(s.bytes_dropped, 0u);
  EXPECT_TRUE(s.balanced());
}

TEST(NetLink, DropsAndDuplicatesKeepTheInvariant) {
  storage::FaultPolicy policy;
  policy.link_drop = 0.3;
  policy.link_duplicate = 0.2;
  storage::FaultInjector inj(policy, 99);
  Network net(4, 2);
  net.attach_fault_injector(&inj);
  std::size_t delivered = 0;
  for (int i = 0; i < 500; ++i)
    if (net.send(i % 4, (i + 1) % 4, 512).delivered) ++delivered;
  const NetStats& s = net.stats();
  EXPECT_GT(s.messages_dropped, 0u);
  EXPECT_GT(s.messages_duplicated, 0u);
  EXPECT_LT(delivered, 500u);
  // The chaos invariant: every byte on the wire is accounted for.
  EXPECT_TRUE(s.balanced());
  // A duplicate counts twice on both sides of the ledger.
  EXPECT_EQ(s.messages_delivered,
            delivered + s.messages_duplicated);
}

TEST(NetLink, PartitionWindowBlackholesOneDirectedLink) {
  storage::FaultInjector inj;
  Network net(4, 2);
  net.attach_fault_injector(&inj);
  inj.partition_link(storage::FaultInjector::key("link", 0, 1), 2);
  EXPECT_FALSE(net.send(0, 1, 64).delivered);
  EXPECT_TRUE(net.send(1, 0, 64).delivered);  // reverse direction is fine
  EXPECT_TRUE(net.send(0, 2, 64).delivered);  // other links are fine
  EXPECT_FALSE(net.send(0, 1, 64).delivered);
  EXPECT_TRUE(net.send(0, 1, 64).delivered);  // window expired: healed
  EXPECT_TRUE(net.stats().balanced());
  EXPECT_EQ(inj.stats().partition_drops, 2u);
}

TEST(NetLink, PerLinkAndIngressCounters) {
  Network net(4, 2);
  net.send(0, 2, 100);             // same domain (0 -> 0)
  net.send(0, 1, 200);             // cross (0 -> 1)
  net.send(3, net.client(), 300);  // node -> client is always cross
  EXPECT_EQ(net.stats().cross_domain_bytes, 500u);
  EXPECT_EQ(net.ingress_bytes(2), 100u);
  EXPECT_EQ(net.ingress_bytes(1), 200u);
  EXPECT_EQ(net.ingress_bytes(net.client()), 300u);
  EXPECT_EQ(net.link_bytes(0, 1), 200u);
  EXPECT_EQ(net.link_bytes(1, 0), 0u);
  EXPECT_EQ(net.max_link_bytes(), 300u);
  net.reset_stats();
  EXPECT_EQ(net.stats().bytes_sent, 0u);
  EXPECT_EQ(net.max_link_bytes(), 0u);
  EXPECT_EQ(net.ingress_bytes(1), 0u);
}

TEST(NetLink, DeterministicUnderSeed) {
  const auto run = [](std::uint64_t seed) {
    storage::FaultPolicy policy;
    policy.link_drop = 0.2;
    storage::FaultInjector inj(policy, seed);
    NetConfig cfg;
    cfg.jitter_us = 50;
    Network net(4, 2, cfg, seed);
    net.attach_fault_injector(&inj);
    std::vector<std::uint64_t> latencies;
    std::size_t drops = 0;
    for (int i = 0; i < 100; ++i) {
      const SendResult r = net.send(i % 4, (i + 3) % 4, 1024);
      latencies.push_back(r.latency_us);
      drops += r.delivered ? 0 : 1;
    }
    return std::pair{latencies, drops};
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace tvmec::cluster
