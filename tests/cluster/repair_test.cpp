#include "cluster/repair.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "../test_util.h"
#include "cluster/cluster.h"
#include "core/plan_cache.h"
#include "storage/fault_injector.h"

namespace tvmec::cluster {
namespace {

constexpr std::size_t kUnit = 512;

ClusterConfig make_config(std::size_t nodes, std::size_t domains) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_domains = domains;
  return cfg;
}

/// Partitions the link a non-aggregator helper of `plan` would use to
/// ship its partial, so the next DAG attempt deterministically loses
/// that helper mid-repair. Returns the helper's node.
std::size_t partition_helper_uplink(const RepairPlan& plan,
                                    storage::FaultInjector& inj) {
  for (const auto& helper : plan.helpers) {
    const auto dit =
        std::find(plan.domains.begin(), plan.domains.end(), helper.domain);
    const std::size_t agg = plan.aggregators[static_cast<std::size_t>(
        dit - plan.domains.begin())];
    if (helper.node == agg) continue;
    inj.partition_link(storage::FaultInjector::key("link", helper.node, agg),
                       64);
    return helper.node;
  }
  ADD_FAILURE() << "plan has no non-aggregator helper to fail";
  return 0;
}

TEST(RepairDag, CleanStripeIsANoop) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  cluster.put("obj", testutil::random_vector(4 * kUnit, 3));
  const RepairReport report = cluster.repairer().repair_stripe("obj", 0);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.units_repaired, 0u);
  EXPECT_EQ(report.bytes_on_wire, 0u);
  EXPECT_EQ(cluster.repair_stats().attempts_started, 0u);
  EXPECT_THROW(cluster.repairer().repair_stripe("nope", 0),
               std::invalid_argument);
}

TEST(RepairDag, RebuildsUnitsLostToANodeFailure) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(3 * 4 * kUnit, 31);
  cluster.put("obj", payload);
  const std::size_t victim = cluster.placement("obj", 0)[0];
  cluster.fail_node(victim);

  EXPECT_EQ(cluster.repair(), 1u);
  const RepairStats& rs = cluster.repair_stats();
  EXPECT_TRUE(rs.identity_holds());
  EXPECT_GE(rs.attempts_completed, 1u);
  EXPECT_EQ(rs.units_repaired, 1u);
  EXPECT_EQ(rs.stripes_repaired, 1u);
  EXPECT_EQ(rs.naive_fallbacks, 0u);
  EXPECT_GT(rs.bytes_on_wire, 0u);

  // Placement metadata now points at a live replacement...
  const std::size_t replacement = cluster.placement("obj", 0)[0];
  EXPECT_NE(replacement, victim);
  EXPECT_FALSE(cluster.node_failed(replacement));
  // ...and the rebuilt stripe reads back clean, not degraded.
  const std::size_t degraded_before = cluster.stats().degraded_reads;
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(cluster.stats().degraded_reads, degraded_before);
}

TEST(RepairDag, ScrubFindsCorruptionAndHealsInPlace) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(2 * 4 * kUnit, 47);
  cluster.put("obj", payload);
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 1));
  ASSERT_TRUE(cluster.corrupt_unit("obj", 1, 5));

  EXPECT_EQ(cluster.scrub(), 2u);
  EXPECT_TRUE(cluster.repair_stats().identity_holds());
  EXPECT_EQ(cluster.repair_stats().units_repaired, 2u);
  // The damage is gone: a second pass finds nothing.
  EXPECT_EQ(cluster.scrub(), 0u);
  const std::size_t degraded_before = cluster.stats().degraded_reads;
  ASSERT_EQ(*cluster.get("obj"), payload);
  EXPECT_EQ(cluster.stats().degraded_reads, degraded_before);
}

TEST(RepairDag, PlanShapeFollowsTheAggregationTree) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  cluster.put("obj", testutil::random_vector(4 * kUnit, 59));
  EXPECT_FALSE(cluster.repairer().plan_stripe("obj", 0).has_value());  // clean
  cluster.fail_node(cluster.placement("obj", 0)[1]);

  const auto plan = cluster.repairer().plan_stripe("obj", 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->erased, std::vector<std::size_t>{1});
  ASSERT_NE(plan->decode, nullptr);
  ASSERT_EQ(plan->helpers.size(), 4u);  // k helpers, one recovery column each
  EXPECT_EQ(plan->hops(), 4u);
  for (std::size_t i = 0; i < plan->helpers.size(); ++i) {
    EXPECT_EQ(plan->helpers[i].column, i);
    EXPECT_EQ(plan->helpers[i].domain,
              cluster.domain_of(plan->helpers[i].node));
    if (i > 0) {  // survivors ascending: the cache-canonical order
      EXPECT_LT(plan->helpers[i - 1].unit, plan->helpers[i].unit);
    }
  }
  // One aggregator per distinct helper domain, drawn from that domain.
  ASSERT_EQ(plan->aggregators.size(), plan->domains.size());
  for (std::size_t d = 0; d < plan->domains.size(); ++d)
    EXPECT_EQ(cluster.domain_of(plan->aggregators[d]), plan->domains[d]);
  EXPECT_FALSE(cluster.node_failed(plan->root_node));
}

TEST(RepairDag, DagMovesFewerCrossDomainAndIngressBytesThanNaive) {
  // Same cluster shape, same payload, same loss — one repairs through the
  // aggregation DAG, the other through the naive k-unit star (the E22
  // comparison). Total payload bytes are equal by GF-linearity (full-unit
  // MDS helpers either way); the DAG wins on *where* the bytes move.
  const auto payload = testutil::random_vector(6 * kUnit, 61);
  const auto run = [&](bool dag) {
    auto cluster = std::make_unique<Cluster>(ec::CodeParams{6, 3, 8}, kUnit,
                                             make_config(12, 3));
    cluster->put("obj", payload);
    cluster->fail_node(cluster->placement("obj", 0)[1]);
    RepairConfig cfg;
    cfg.dag_enabled = dag;
    cluster->set_repair_config(cfg);
    const RepairReport report = cluster->repairer().repair_stripe("obj", 0);
    EXPECT_TRUE(report.completed);
    EXPECT_EQ(report.units_repaired, 1u);
    EXPECT_EQ(report.used_naive, !dag);
    EXPECT_TRUE(cluster->repair_stats().identity_holds());
    EXPECT_EQ(*cluster->get("obj"), payload);
    return report;
  };
  const RepairReport dag = run(true);
  const RepairReport naive = run(false);

  // Honest accounting: the total on the wire is the same k column-terms.
  EXPECT_EQ(dag.bytes_on_wire, naive.bytes_on_wire);
  // The wins: domain crossings, root ingress, modeled completion time.
  EXPECT_LT(dag.cross_domain_bytes, naive.cross_domain_bytes);
  EXPECT_LT(dag.root_ingress_bytes, naive.root_ingress_bytes);
  EXPECT_LT(dag.makespan_us, naive.makespan_us);
}

TEST(RepairDag, HelperLossMidDagReplansToByteIdenticalCompletion) {
  // The acceptance scenario: a helper drops off the network *during* the
  // DAG (its partial-upload link partitions mid-attempt). The coordinator
  // discards the attempt's partials, excludes the helper, re-plans, and
  // completes — and the rebuilt bytes match the original payload exactly.
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(4 * kUnit, 71);
  cluster.put("obj", payload);
  cluster.fail_node(cluster.placement("obj", 0)[1]);

  storage::FaultInjector inj;
  cluster.attach_fault_injector(&inj);
  const auto plan = cluster.repairer().plan_stripe("obj", 0);
  ASSERT_TRUE(plan.has_value());
  const std::size_t lost_helper = partition_helper_uplink(*plan, inj);

  const RepairReport report = cluster.repairer().repair_stripe("obj", 0);
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.used_naive);
  EXPECT_GE(report.replans, 1u);
  const RepairStats& rs = cluster.repair_stats();
  EXPECT_TRUE(rs.identity_holds());
  EXPECT_GE(rs.attempts_started, 2u);
  EXPECT_GE(rs.attempts_replanned, 1u);
  EXPECT_EQ(rs.attempts_completed, 1u);
  EXPECT_TRUE(cluster.net().stats().balanced());

  // Byte-identity vs the oracle (the original payload): nothing
  // half-aggregated from the failed attempt leaked into the result.
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  // The partitioned helper itself was never the rebuilt unit's target.
  EXPECT_NE(cluster.placement("obj", 0)[1], lost_helper);
}

TEST(RepairDag, FallsBackToNaiveWhenReplanBudgetExhausted) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(4 * kUnit, 73);
  cluster.put("obj", payload);
  cluster.fail_node(cluster.placement("obj", 0)[1]);

  storage::FaultInjector inj;
  cluster.attach_fault_injector(&inj);
  const auto plan = cluster.repairer().plan_stripe("obj", 0);
  ASSERT_TRUE(plan.has_value());
  partition_helper_uplink(*plan, inj);

  RepairConfig cfg;
  cfg.max_replans = 0;  // no second DAG attempt: straight to the star
  cluster.set_repair_config(cfg);
  const RepairReport report = cluster.repairer().repair_stripe("obj", 0);
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.used_naive);
  const RepairStats& rs = cluster.repair_stats();
  EXPECT_TRUE(rs.identity_holds());
  EXPECT_EQ(rs.naive_fallbacks, 1u);
  EXPECT_EQ(rs.attempts_replanned, 1u);  // the superseded DAG attempt
  EXPECT_EQ(rs.attempts_completed, 1u);
  EXPECT_EQ(*cluster.get("obj"), payload);
}

TEST(RepairDag, AbandonsAnUnrecoverableStripe) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(4 * kUnit, 79);
  cluster.put("obj", payload);
  const auto nodes = cluster.placement("obj", 0);
  for (std::size_t u = 0; u < 3; ++u) cluster.fail_node(nodes[u]);  // > r

  const RepairReport report = cluster.repairer().repair_stripe("obj", 0);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.units_repaired, 0u);
  const RepairStats& rs = cluster.repair_stats();
  EXPECT_TRUE(rs.identity_holds());
  EXPECT_GE(rs.attempts_abandoned, 1u);
  EXPECT_EQ(rs.attempts_completed, 0u);
  EXPECT_THROW(cluster.get("obj"), std::runtime_error);
}

TEST(RepairDag, PlanCacheKeysConstrainedPlansByLocality) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto cache = std::make_shared<core::PlanCache>();
  cluster.set_plan_cache(cache);
  cluster.put("obj", testutil::random_vector(2 * 4 * kUnit, 83));
  // Same erased unit id in both stripes, but rotated placement: the
  // survivor preference differs, so the plans must not alias.
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 1));
  ASSERT_TRUE(cluster.corrupt_unit("obj", 1, 1));

  ASSERT_TRUE(cluster.repairer().plan_stripe("obj", 0).has_value());
  EXPECT_EQ(cache->stats().misses, 1u);
  ASSERT_TRUE(cluster.repairer().plan_stripe("obj", 0).has_value());
  EXPECT_EQ(cache->stats().hits, 1u);  // identical constraint: cache hit
  ASSERT_TRUE(cluster.repairer().plan_stripe("obj", 1).has_value());
  EXPECT_EQ(cache->stats().misses, 2u);  // same pattern, new locality
  EXPECT_EQ(cache->stats().entries, 2u);
}

TEST(RepairDag, SeededChaosKeepsEveryCounterIdentity) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(12, 3));
  const auto payload = testutil::random_vector(6 * 4 * kUnit, 89);
  cluster.put("obj", payload);

  storage::FaultPolicy policy;
  policy.transient_read = 0.03;
  policy.link_drop = 0.03;
  policy.link_duplicate = 0.02;
  policy.link_partition = 0.005;
  policy.partition_ops = 4;
  storage::FaultInjector inj(policy, 0x5EED);
  cluster.attach_fault_injector(&inj);
  cluster.fail_node(cluster.placement("obj", 0)[2]);
  cluster.repair();

  // Whatever the chaos did, the ledgers must close.
  EXPECT_TRUE(cluster.repair_stats().identity_holds());
  EXPECT_TRUE(cluster.net().stats().balanced());

  // Heal phase: quiet faults, scrub out any residue, then the payload
  // must read back byte-identical.
  inj.set_policy(storage::FaultPolicy{});
  cluster.scrub();
  EXPECT_TRUE(cluster.repair_stats().identity_holds());
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

}  // namespace
}  // namespace tvmec::cluster
