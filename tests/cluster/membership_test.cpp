#include "cluster/membership.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "storage/fault_injector.h"

namespace tvmec::cluster {
namespace {

constexpr std::size_t kUnit = 512;

ClusterConfig make_config(std::size_t nodes, std::size_t domains,
                          std::uint64_t jitter_us = 0) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_domains = domains;
  cfg.net.jitter_us = jitter_us;
  return cfg;
}

TEST(Membership, RejectsInvertedPhiThresholds) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  MembershipConfig cfg;
  cfg.suspect_phi = 5.0;
  cfg.dead_phi = 2.0;
  EXPECT_THROW(Membership(cluster, cfg), std::invalid_argument);
}

// Calibration, false-positive side: with latency jitter as the only
// disturbance (no faults at all), a long seeded run must never take a
// live node past Alive — the auto ack timeout absorbs worst-case jitter.
TEST(Membership, JitterOnlyNeverMarksAnyNodeDead) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit,
                  make_config(9, 3, /*jitter_us=*/75));
  Membership membership(cluster);
  for (int t = 0; t < 1000; ++t) membership.tick();
  EXPECT_EQ(membership.count(NodeState::Alive), 9u);
  EXPECT_EQ(membership.count(NodeState::Suspect), 0u);
  EXPECT_EQ(membership.count(NodeState::Dead), 0u);
  const MembershipStats& stats = membership.stats();
  EXPECT_EQ(stats.probes_sent, 9000u);
  EXPECT_EQ(stats.acks_received, 9000u);  // nothing missed, nothing late
  EXPECT_EQ(stats.acks_late, 0u);
  EXPECT_EQ(stats.alive_to_suspect, 0u);
  EXPECT_TRUE(membership.probe_identity_holds());
  EXPECT_TRUE(membership.transitions_balance());
}

// Calibration, detection-latency side: a crashed node must pass through
// Suspect and be Dead within a bounded number of heartbeat intervals —
// with a warmed gap estimator (mean ~1 tick), phi crosses dead_phi
// after about dead_phi silent ticks.
TEST(Membership, CrashedNodeDeadWithinBoundedIntervals) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);
  Membership membership(cluster);
  for (int t = 0; t < 32; ++t) membership.tick();  // warm the estimators
  ASSERT_EQ(membership.count(NodeState::Alive), 9u);

  injector.crash_node(4);
  int suspect_after = -1;
  int dead_after = -1;
  const int bound = static_cast<int>(2 * membership.config().dead_phi) + 2;
  for (int t = 1; t <= bound; ++t) {
    membership.tick();
    if (suspect_after < 0 && membership.state(4) != NodeState::Alive)
      suspect_after = t;
    if (membership.state(4) == NodeState::Dead) {
      dead_after = t;
      break;
    }
  }
  ASSERT_GT(dead_after, 0) << "node 4 not Dead within " << bound
                           << " heartbeat intervals";
  EXPECT_GT(suspect_after, 0);
  EXPECT_LT(suspect_after, dead_after);  // escalation, not a direct jump
  EXPECT_FALSE(membership.routable(4));
  // Only the crashed node transitioned.
  EXPECT_EQ(membership.stats().alive_to_suspect, 1u);
  EXPECT_EQ(membership.stats().suspect_to_dead, 1u);
  EXPECT_TRUE(membership.probe_identity_holds());
  EXPECT_TRUE(membership.transitions_balance());
}

TEST(Membership, RejoinSnapsDeadBackToAlive) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);
  Membership membership(cluster);
  for (int t = 0; t < 16; ++t) membership.tick();
  injector.crash_node(2);
  for (int t = 0; t < 32 && membership.state(2) != NodeState::Dead; ++t)
    membership.tick();
  ASSERT_EQ(membership.state(2), NodeState::Dead);

  injector.repair_node(2);
  membership.tick();  // first post-repair ack snaps it back
  EXPECT_EQ(membership.state(2), NodeState::Alive);
  EXPECT_TRUE(membership.routable(2));
  EXPECT_EQ(membership.stats().dead_to_alive, 1u);
  EXPECT_TRUE(membership.transitions_balance());
}

// Heartbeats are messages: a partition window on the client->node link
// starves probes exactly as it starves data, and the window healing on
// its own brings the node back.
TEST(Membership, PartitionWindowDrivesSuspicionThenHeals) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);
  Membership membership(cluster);
  for (int t = 0; t < 16; ++t) membership.tick();

  const std::size_t client = cluster.net().client();
  injector.partition_link(storage::FaultInjector::key("link", client, 7), 20);
  for (int t = 0; t < 20; ++t) membership.tick();
  EXPECT_EQ(membership.state(7), NodeState::Dead);
  EXPECT_GT(membership.stats().acks_missed, 0u);

  // The window has consumed its ops; probes flow again.
  membership.tick();
  EXPECT_EQ(membership.state(7), NodeState::Alive);
  EXPECT_EQ(membership.stats().dead_to_alive, 1u);
  EXPECT_TRUE(membership.probe_identity_holds());
  EXPECT_TRUE(membership.transitions_balance());
}

TEST(Membership, TightTimeoutCountsLateAcks) {
  // A 1us round-trip budget is unmeetable: every ack arrives, and every
  // ack is late — the timeout path, not the loss path.
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  MembershipConfig cfg;
  cfg.ack_timeout_us = 1;
  Membership membership(cluster, cfg);
  for (int t = 0; t < 12; ++t) membership.tick();
  const MembershipStats& stats = membership.stats();
  EXPECT_EQ(stats.acks_received, 0u);
  EXPECT_EQ(stats.acks_missed, 0u);
  EXPECT_EQ(stats.acks_late, stats.probes_sent);
  EXPECT_EQ(membership.count(NodeState::Dead), 9u);  // silence accrues
  EXPECT_TRUE(membership.probe_identity_holds());
  EXPECT_TRUE(membership.transitions_balance());
}

// The core routing-semantics change: with a detector attached the
// cluster routes on *verdicts*, not on omniscient injector state.
TEST(Membership, ClusterRoutesOnVerdictNotOmniscience) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);

  // Without a membership, node_usable is the omniscient !node_failed.
  injector.crash_node(3);
  EXPECT_TRUE(cluster.node_failed(3));
  EXPECT_FALSE(cluster.node_usable(3));
  injector.repair_node(3);

  Membership membership(cluster);
  cluster.set_membership(&membership);
  for (int t = 0; t < 16; ++t) membership.tick();
  injector.crash_node(3);
  // Physically down, but no verdict yet: still routed to (the op that
  // tries it will fail honestly and mark it).
  EXPECT_TRUE(cluster.node_failed(3));
  EXPECT_TRUE(cluster.node_usable(3));
  for (int t = 0; t < 32 && membership.state(3) != NodeState::Dead; ++t)
    membership.tick();
  EXPECT_FALSE(cluster.node_usable(3));
  cluster.set_membership(nullptr);
}

// Heartbeat traffic obeys the same ledger as data traffic.
TEST(Membership, HeartbeatTrafficBalancesNetLedger) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector({.link_drop = 0.05}, 99);
  cluster.attach_fault_injector(&injector);
  Membership membership(cluster);
  const std::uint64_t t0 = cluster.net().now_us();
  for (int t = 0; t < 200; ++t) membership.tick();
  EXPECT_TRUE(cluster.net().stats().balanced());
  EXPECT_GT(membership.stats().acks_missed, 0u);  // drops did land on probes
  // The tick owns the clock: 200 heartbeat intervals elapsed.
  EXPECT_EQ(cluster.net().now_us() - t0,
            200 * membership.config().heartbeat_interval_us);
  EXPECT_TRUE(membership.probe_identity_holds());
  EXPECT_TRUE(membership.transitions_balance());
}

}  // namespace
}  // namespace tvmec::cluster
