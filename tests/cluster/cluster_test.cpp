#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "../test_util.h"
#include "storage/fault_injector.h"

namespace tvmec::cluster {
namespace {

constexpr std::size_t kUnit = 512;

ClusterConfig make_config(std::size_t nodes, std::size_t domains) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_domains = domains;
  return cfg;
}

TEST(Cluster, RejectsTooFewNodesForPlacement) {
  // k + r = 6 distinct nodes per stripe; 5 can't host one.
  EXPECT_THROW(Cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(5, 1)),
               std::invalid_argument);
}

TEST(Cluster, PutGetRoundtripWithPadding) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  // Deliberately not a stripe multiple: exercises zero-padding and the
  // exact-size restore on get.
  const auto payload = testutil::random_vector(3 * 4 * kUnit + 137, 42);
  cluster.put("obj", payload);
  EXPECT_TRUE(cluster.exists("obj"));
  EXPECT_EQ(cluster.object_stripe_count("obj"), 4u);
  EXPECT_EQ(cluster.stats().stripes_written, 4u);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(cluster.stats().degraded_reads, 0u);

  EXPECT_FALSE(cluster.get("nope").has_value());
  cluster.remove("obj");
  EXPECT_FALSE(cluster.exists("obj"));
  EXPECT_FALSE(cluster.get("obj").has_value());
}

TEST(Cluster, PlacementSpreadsUnitsAcrossFailureDomains) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(12, 3));
  const auto payload = testutil::random_vector(5 * 4 * kUnit, 7);
  cluster.put("obj", payload);
  for (std::size_t s = 0; s < cluster.object_stripe_count("obj"); ++s) {
    const auto& nodes = cluster.placement("obj", s);
    ASSERT_EQ(nodes.size(), 6u);
    // Distinct nodes per stripe.
    std::set<std::size_t> distinct(nodes.begin(), nodes.end());
    EXPECT_EQ(distinct.size(), nodes.size());
    // All min(n, D) = 3 failure domains covered, and no domain holds more
    // than ceil(n / D) = 2 units — one domain outage stays decodable.
    std::vector<std::size_t> per_domain(cluster.num_domains(), 0);
    for (const std::size_t node : nodes) ++per_domain[cluster.domain_of(node)];
    for (const std::size_t count : per_domain) {
      EXPECT_GE(count, 1u);
      EXPECT_LE(count, 2u);
    }
  }
  EXPECT_THROW(cluster.placement("obj", 99), std::invalid_argument);
  EXPECT_THROW(cluster.placement("nope", 0), std::invalid_argument);
}

TEST(Cluster, DegradedReadDecodesThroughSurvivors) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(2 * 4 * kUnit, 21);
  cluster.put("obj", payload);
  // Kill the node holding data unit 1 of stripe 0.
  cluster.fail_node(cluster.placement("obj", 0)[1]);
  EXPECT_EQ(cluster.stats().failed_nodes, 1u);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_GE(cluster.stats().degraded_reads, 1u);
}

TEST(Cluster, DegradedReadSurvivesUpToRLosses) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(4 * kUnit, 33);
  cluster.put("obj", payload);
  const auto nodes = cluster.placement("obj", 0);
  cluster.fail_node(nodes[0]);
  cluster.fail_node(nodes[3]);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  // A third loss exceeds r: the stripe is unrecoverable.
  cluster.fail_node(nodes[1]);
  EXPECT_THROW(cluster.get("obj"), std::runtime_error);
}

TEST(Cluster, CorruptUnitIsDetectedAndReadDegrades) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(4 * kUnit, 55);
  cluster.put("obj", payload);
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 2));
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // CRC caught the flip; decode healed the read
  EXPECT_GE(cluster.stats().corruptions_detected, 1u);
  EXPECT_GE(cluster.stats().degraded_reads, 1u);
}

TEST(Cluster, ReadsRideOutTransientFaultsAndDrops) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(6 * 4 * kUnit, 77);
  cluster.put("obj", payload);

  storage::FaultPolicy policy;
  policy.transient_read = 0.1;
  policy.link_drop = 0.1;
  storage::FaultInjector inj(policy, 0xBEEF);
  cluster.attach_fault_injector(&inj);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_GT(cluster.retry_stats().retries, 0u);
  EXPECT_TRUE(cluster.net().stats().balanced());
}

TEST(Cluster, HedgedReadBeatsAStraggler) {
  ClusterConfig cfg = make_config(6, 3);
  cfg.hedge.min_samples = 1;
  cfg.hedge.multiplier = 1.5;
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, cfg);
  const auto payload = testutil::random_vector(4 * kUnit, 88);
  cluster.put("obj", payload);
  // Clean pass to arm the per-node EWMAs.
  ASSERT_EQ(*cluster.get("obj"), payload);
  const auto nodes = cluster.placement("obj", 0);
  EXPECT_GT(cluster.node_ewma_us(nodes[0]), 0.0);

  // Stall the response link of data unit 0's node: three response sends
  // vanish, so the fourth attempt lands at ~4x the EWMA — far past the
  // 1.5x hedge budget — and the parity-backed hedge read wins the race.
  storage::FaultInjector inj;
  cluster.attach_fault_injector(&inj);
  inj.partition_link(
      storage::FaultInjector::key("link", nodes[0], cluster.net().client()),
      3);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // bytes identical whichever path completes
  EXPECT_GE(cluster.stats().hedged_reads, 1u);
  EXPECT_GE(cluster.stats().hedge_wins, 1u);
}

TEST(Cluster, HedgingStaysOffBelowMinSamples) {
  ClusterConfig cfg = make_config(6, 3);
  cfg.hedge.min_samples = 100;  // never armed in this test
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, cfg);
  const auto payload = testutil::random_vector(4 * kUnit, 99);
  cluster.put("obj", payload);
  ASSERT_EQ(*cluster.get("obj"), payload);
  const auto nodes = cluster.placement("obj", 0);
  storage::FaultInjector inj;
  cluster.attach_fault_injector(&inj);
  inj.partition_link(
      storage::FaultInjector::key("link", nodes[0], cluster.net().client()),
      3);
  ASSERT_EQ(*cluster.get("obj"), payload);
  EXPECT_EQ(cluster.stats().hedged_reads, 0u);
}

TEST(Cluster, ReviveNodeRejoinsEmptyAndClearsCrashState) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector inj;
  cluster.attach_fault_injector(&inj);
  const auto payload = testutil::random_vector(4 * kUnit, 13);
  cluster.put("obj", payload);
  const std::size_t victim = cluster.placement("obj", 0)[0];
  inj.crash_node(victim);
  EXPECT_TRUE(cluster.node_failed(victim));  // injector crash counts
  cluster.revive_node(victim);
  EXPECT_FALSE(cluster.node_failed(victim));  // crash state cleared
  // A node failed via the cluster API also revives clean.
  cluster.fail_node(victim);
  EXPECT_TRUE(cluster.node_failed(victim));
  cluster.revive_node(victim);
  EXPECT_FALSE(cluster.node_failed(victim));
  // Its units are gone (replacement hardware): the read degrades.
  ASSERT_EQ(*cluster.get("obj"), payload);
  EXPECT_GE(cluster.stats().degraded_reads, 1u);
}

TEST(Cluster, VirtualTimeAccumulatesOnReadsAndWrites) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  const auto payload = testutil::random_vector(4 * kUnit, 17);
  cluster.put("obj", payload);
  EXPECT_GT(cluster.stats().write_virtual_us, 0u);
  ASSERT_TRUE(cluster.get("obj").has_value());
  EXPECT_GT(cluster.stats().read_virtual_us, 0u);
}

}  // namespace
}  // namespace tvmec::cluster
