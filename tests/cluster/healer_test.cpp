#include "cluster/healer.h"

#include <gtest/gtest.h>

#include <vector>

#include "../test_util.h"
#include "cluster/repair.h"
#include "storage/fault_injector.h"

namespace tvmec::cluster {
namespace {

constexpr std::size_t kUnit = 512;

ClusterConfig make_config(std::size_t nodes, std::size_t domains) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.num_domains = domains;
  return cfg;
}

void expect_identities(const Healer& healer) {
  EXPECT_TRUE(healer.identity_holds());
  const HealerStats& s = healer.stats();
  EXPECT_EQ(s.events_reported, s.events_enqueued + s.events_coalesced);
}

TEST(Healer, ScrubFindingsHealViaQueue) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  Healer healer(cluster, nullptr);
  const auto payload = testutil::random_vector(2 * 4 * kUnit, 11);
  cluster.put("obj", payload);
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 1));
  ASSERT_TRUE(cluster.corrupt_unit("obj", 1, 4));

  // With a sink attached, scrub discovers and *reports* — nothing is
  // repaired inline.
  EXPECT_EQ(cluster.scrub(), 2u);
  EXPECT_EQ(healer.events_of(DamageKind::ScrubFinding), 2u);
  EXPECT_EQ(healer.pending(), 2u);
  EXPECT_EQ(cluster.stats().units_repaired, 0u);

  ASSERT_TRUE(healer.run_until_idle(16));
  EXPECT_EQ(healer.stats().repaired, 2u);
  EXPECT_EQ(cluster.stats().units_repaired, 2u);
  EXPECT_EQ(cluster.scrub(), 0u);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  expect_identities(healer);
}

// Satellite: a CRC-corrupt unit discovered by a degraded get() must
// produce a damage event, not just a counter bump.
TEST(Healer, DegradedGetReportsReadCorruption) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  Healer healer(cluster, nullptr);
  const auto payload = testutil::random_vector(4 * kUnit, 23);
  cluster.put("obj", payload);
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 0));  // persisted, a data unit

  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // decoded through survivors
  EXPECT_EQ(cluster.stats().degraded_reads, 1u);
  EXPECT_EQ(healer.events_of(DamageKind::ReadCorruption), 1u);
  EXPECT_EQ(healer.pending(), 1u);

  ASSERT_TRUE(healer.run_until_idle(16));
  EXPECT_EQ(healer.stats().repaired, 1u);
  EXPECT_EQ(cluster.scrub(), 0u);  // the persisted corruption is gone
  expect_identities(healer);
}

// Satellite: a store_unit failure during put() must produce a damage
// event for the short-written stripe.
TEST(Healer, FailedWriteReportsWriteFailure) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);
  Healer healer(cluster, nullptr);

  injector.crash_node(0);  // stripe 0 places on nodes 0..5
  const auto payload = testutil::random_vector(4 * kUnit, 31);
  cluster.put("obj", payload);
  EXPECT_EQ(healer.events_of(DamageKind::WriteFailure), 1u);
  EXPECT_EQ(healer.pending(), 1u);
  EXPECT_EQ(cluster.repairer().stripe_health("obj", 0).erased, 1u);

  ASSERT_TRUE(healer.run_until_idle(16));
  EXPECT_EQ(healer.stats().repaired, 1u);
  EXPECT_EQ(cluster.repairer().stripe_health("obj", 0).erased, 0u);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(cluster.stats().degraded_reads, 0u);  // healed before the read
  expect_identities(healer);
}

// Satellite: revive_node emits the re-replication debt instead of
// letting the node rejoin silently empty.
TEST(Healer, ReviveEmitsReplicationDebtAndHealsToFullRedundancy) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  Healer healer(cluster, nullptr);
  const auto payload = testutil::random_vector(3 * 4 * kUnit, 47);
  cluster.put("obj", payload);

  // Node 0 holds one unit of each stripe that placed on it.
  const auto at_risk = cluster.stripes_on_node(0);
  ASSERT_FALSE(at_risk.empty());
  cluster.fail_node(0);
  cluster.revive_node(0);  // rejoins empty: everything it held is debt
  EXPECT_EQ(cluster.stats().units_lost_on_revive, at_risk.size());
  EXPECT_EQ(healer.events_of(DamageKind::Revive), at_risk.size());
  EXPECT_EQ(healer.pending(), at_risk.size());

  ASSERT_TRUE(healer.run_until_idle(32));
  EXPECT_EQ(healer.stats().repaired, at_risk.size());
  for (std::size_t s = 0; s < cluster.object_stripe_count("obj"); ++s)
    EXPECT_EQ(cluster.repairer().stripe_health("obj", s).erased, 0u)
        << "stripe " << s << " not fully redundant after revive";
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_EQ(cluster.scrub(), 0u);
  expect_identities(healer);
}

// A node declared Dead by the detector enqueues exactly the stripes
// that lost a unit, and the healer re-places them on live nodes.
TEST(Healer, DeadVerdictEnqueuesNodeStripesAndHeals) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);
  Membership membership(cluster);
  Healer healer(cluster, &membership);
  const auto payload = testutil::random_vector(3 * 4 * kUnit, 53);
  cluster.put("obj", payload);
  const auto at_risk = cluster.stripes_on_node(2);
  ASSERT_FALSE(at_risk.empty());

  for (int t = 0; t < 16; ++t) healer.tick();  // warm detector, idle queue
  injector.crash_node(2);
  for (int t = 0; t < 32 && membership.state(2) != NodeState::Dead; ++t)
    healer.tick();
  ASSERT_EQ(membership.state(2), NodeState::Dead);
  ASSERT_TRUE(healer.run_until_idle(64));
  EXPECT_EQ(healer.stats().nodes_declared_dead, 1u);
  EXPECT_EQ(healer.events_of(DamageKind::MissedHeartbeats), at_risk.size());
  EXPECT_GE(healer.stats().repaired, at_risk.size());
  for (std::size_t s = 0; s < cluster.object_stripe_count("obj"); ++s)
    EXPECT_EQ(cluster.repairer().stripe_health("obj", s).erased, 0u);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  EXPECT_TRUE(membership.transitions_balance());
  EXPECT_TRUE(membership.probe_identity_holds());
  expect_identities(healer);
}

TEST(RepairQueue, PriorityOrdersByErasuresRemaining) {
  // Object "a" loses one unit, "b" loses two. Scrub discovers "a" first
  // (map order), so FIFO would heal "a" first; priority must heal "b"
  // first — it is one erasure from data loss.
  for (const bool priority : {true, false}) {
    Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
    HealerConfig cfg;
    cfg.max_repairs_per_tick = 1;
    cfg.priority_enabled = priority;
    Healer healer(cluster, nullptr, cfg);
    cluster.put("a", testutil::random_vector(4 * kUnit, 61));
    cluster.put("b", testutil::random_vector(4 * kUnit, 67));
    ASSERT_TRUE(cluster.corrupt_unit("a", 0, 0));
    ASSERT_TRUE(cluster.corrupt_unit("b", 0, 0));
    ASSERT_TRUE(cluster.corrupt_unit("b", 0, 1));
    EXPECT_EQ(cluster.scrub(), 3u);
    EXPECT_EQ(healer.pending(), 2u);

    healer.tick();  // one repair slot: the ordering decides who heals
    const std::size_t a_left =
        cluster.repairer().stripe_health("a", 0).erased;
    const std::size_t b_left =
        cluster.repairer().stripe_health("b", 0).erased;
    if (priority) {
      EXPECT_EQ(b_left, 0u) << "priority must rebuild the riskier stripe";
      EXPECT_EQ(a_left, 1u);
    } else {
      EXPECT_EQ(a_left, 0u) << "FIFO heals in arrival order";
      EXPECT_EQ(b_left, 2u);
    }
    ASSERT_TRUE(healer.run_until_idle(16));
    EXPECT_EQ(cluster.repairer().stripe_health("a", 0).erased, 0u);
    EXPECT_EQ(cluster.repairer().stripe_health("b", 0).erased, 0u);
    expect_identities(healer);
  }
}

TEST(RepairQueue, CoalescesDuplicateEvents) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  Healer healer(cluster, nullptr);
  cluster.put("obj", testutil::random_vector(4 * kUnit, 71));
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 2));
  EXPECT_EQ(cluster.scrub(), 1u);
  EXPECT_EQ(cluster.scrub(), 1u);  // same finding, reported again
  const HealerStats& s = healer.stats();
  EXPECT_EQ(s.events_reported, 2u);
  EXPECT_EQ(s.events_enqueued, 1u);
  EXPECT_EQ(s.events_coalesced, 1u);
  EXPECT_EQ(healer.pending(), 1u);
  ASSERT_TRUE(healer.run_until_idle(8));
  EXPECT_EQ(s.repaired, 1u);
  expect_identities(healer);
}

TEST(RepairQueue, ParksUnrecoverableAndReactivatesOnRejoin) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  storage::FaultInjector injector;
  cluster.attach_fault_injector(&injector);
  Membership membership(cluster);
  Healer healer(cluster, &membership);
  const auto payload = testutil::random_vector(4 * kUnit, 73);
  cluster.put("obj", payload);  // one stripe, nodes 0..5

  for (int t = 0; t < 16; ++t) membership.tick();
  // Three of six units dark: past r = 2, unrecoverable as seen.
  injector.crash_node(0);
  injector.crash_node(1);
  injector.crash_node(2);
  for (int t = 0; t < 32 && membership.count(NodeState::Dead) < 3; ++t)
    membership.tick();  // detector only: the queue accumulates, undrained
  ASSERT_EQ(membership.count(NodeState::Dead), 3u);
  EXPECT_EQ(healer.pending(), 1u);  // one stripe, three verdicts coalesced

  healer.run_until_idle(8);
  EXPECT_EQ(healer.pending(), 0u);
  EXPECT_EQ(healer.parked_now(), 1u);
  EXPECT_EQ(healer.stats().parked, 1u);
  EXPECT_EQ(healer.stats().repaired, 0u);

  // One node returns with its units intact: the stripe is back inside
  // the code's correction radius, and the parked entry gets re-examined.
  injector.repair_node(1);
  for (int t = 0; t < 8 && membership.state(1) != NodeState::Alive; ++t)
    membership.tick();
  ASSERT_EQ(membership.state(1), NodeState::Alive);
  EXPECT_EQ(healer.stats().parked_reactivated, 1u);
  EXPECT_EQ(healer.events_of(DamageKind::Rejoin), 1u);
  EXPECT_EQ(healer.parked_now(), 0u);
  EXPECT_EQ(healer.pending(), 1u);

  ASSERT_TRUE(healer.run_until_idle(16));
  EXPECT_EQ(healer.stats().repaired, 1u);
  EXPECT_EQ(cluster.repairer().stripe_health("obj", 0).erased, 0u);
  const auto got = cluster.get("obj");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);  // zero data loss through the whole episode
  EXPECT_TRUE(membership.transitions_balance());
  expect_identities(healer);
}

TEST(Healer, TokenBucketThrottlesDrain) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  HealerConfig cfg;
  cfg.repair_bytes_per_sec = 100'000;  // 1000 tokens per 10ms tick
  cfg.burst_bytes = 1;                 // no head start
  Healer healer(cluster, nullptr, cfg);
  cluster.put("obj", testutil::random_vector(6 * 4 * kUnit, 79));
  for (std::size_t s = 0; s < 6; ++s)
    ASSERT_TRUE(cluster.corrupt_unit("obj", s, 0));
  EXPECT_EQ(cluster.scrub(), 6u);
  EXPECT_EQ(healer.pending(), 6u);

  // Each stripe repair moves a few KB; at ~1KB/tick of budget the drain
  // must stretch across many ticks instead of finishing in one.
  healer.tick();
  EXPECT_LT(healer.stats().repaired, 6u);
  EXPECT_LT(healer.tokens(), 0);  // overdrawn by the first repair
  ASSERT_TRUE(healer.run_until_idle(400));
  EXPECT_EQ(healer.stats().repaired, 6u);
  EXPECT_GT(healer.stats().throttled_ticks, 0u);
  EXPECT_GT(healer.stats().repair_bytes, 0u);
  EXPECT_EQ(cluster.scrub(), 0u);
  expect_identities(healer);
}

TEST(Healer, ForegroundLoadDefersRepair) {
  Cluster cluster(ec::CodeParams{4, 2, 8}, kUnit, make_config(9, 3));
  HealerConfig cfg;
  cfg.foreground_defer_bytes = 1024;
  Healer healer(cluster, nullptr, cfg);
  const auto payload = testutil::random_vector(4 * kUnit, 83);
  cluster.put("obj", payload);
  ASSERT_TRUE(cluster.corrupt_unit("obj", 0, 0));
  EXPECT_EQ(cluster.scrub(), 1u);

  // The put's foreground bytes are still unclaimed: the healer yields.
  healer.tick();
  EXPECT_EQ(healer.stats().deferred_ticks, 1u);
  EXPECT_EQ(healer.stats().repaired, 0u);
  EXPECT_EQ(healer.pending(), 1u);

  // A quiet tick drains normally.
  healer.tick();
  EXPECT_EQ(healer.stats().deferred_ticks, 1u);
  EXPECT_EQ(healer.stats().repaired, 1u);
  expect_identities(healer);
}

}  // namespace
}  // namespace tvmec::cluster
