#include "baselines/xor_schedule.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "baselines/naive.h"
#include "ec/reed_solomon.h"

namespace tvmec::baseline {
namespace {

using testutil::random_bytes;

class BlockingFactorTest : public ::testing::TestWithParam<std::size_t> {};

/// Correctness must be independent of the cache-blocking factor,
/// including factors that do not divide the packet size.
TEST_P(BlockingFactorTest, MatchesNaiveForAnyBlocking) {
  const ec::CodeParams params{10, 4, 8};
  const std::size_t unit = 2048;
  const ec::ReedSolomon rs(params);
  UezatoCoder::Options opts;
  opts.block_bytes = GetParam();
  const UezatoCoder coder(rs.parity_matrix(), opts);
  const NaiveBitmatrixCoder reference(rs.parity_matrix());

  const auto data = random_bytes(params.k * unit, GetParam());
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  tensor::AlignedBuffer<std::uint8_t> expect(params.r * unit);
  coder.apply(data.span(), got.span(), unit);
  reference.apply(data.span(), expect.span(), unit);
  ASSERT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                         got.span().begin()));
}

INSTANTIATE_TEST_SUITE_P(Factors, BlockingFactorTest,
                         ::testing::Values(8u, 40u, 256u, 2048u, 1u << 20),
                         [](const auto& info) {
                           return "b" + std::to_string(info.param);
                         });

TEST(Uezato, MatchesNaiveAcrossCodes) {
  for (const ec::CodeParams params :
       {ec::CodeParams{4, 2, 8}, {8, 3, 8}, {6, 2, 4}, {5, 3, 16}}) {
    const std::size_t unit = 32 * params.w;
    const ec::ReedSolomon rs(params);
    const UezatoCoder coder(rs.parity_matrix());
    const NaiveBitmatrixCoder reference(rs.parity_matrix());
    const auto data = random_bytes(params.k * unit, params.k * 31);
    tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
    tensor::AlignedBuffer<std::uint8_t> expect(params.r * unit);
    coder.apply(data.span(), got.span(), unit);
    reference.apply(data.span(), expect.span(), unit);
    ASSERT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                           got.span().begin()))
        << "k=" << params.k << " w=" << params.w;
  }
}

/// The headline of Uezato's technique: CSE strictly reduces XOR work on
/// real Reed-Solomon bitmatrices.
TEST(UezatoCse, ReducesXorOps) {
  const ec::ReedSolomon rs(ec::CodeParams{10, 4, 8});
  const UezatoCoder with_cse(rs.parity_matrix());
  UezatoCoder::Options no_cse_opts;
  no_cse_opts.enable_cse = false;
  const UezatoCoder no_cse(rs.parity_matrix(), no_cse_opts);

  EXPECT_EQ(no_cse.num_temps(), 0u);
  EXPECT_EQ(no_cse.xor_ops(), no_cse.xor_ops_without_cse());
  EXPECT_GT(with_cse.num_temps(), 0u);
  EXPECT_LT(with_cse.xor_ops(), with_cse.xor_ops_without_cse());
  // Expect a meaningful reduction (>10%) on a dense Cauchy bitmatrix.
  EXPECT_LT(static_cast<double>(with_cse.xor_ops()),
            0.9 * static_cast<double>(with_cse.xor_ops_without_cse()));
}

TEST(UezatoCse, CseResultStillCorrect) {
  const ec::CodeParams params{10, 4, 8};
  const std::size_t unit = 1024;
  const ec::ReedSolomon rs(params);
  const UezatoCoder with_cse(rs.parity_matrix());
  UezatoCoder::Options no_cse_opts;
  no_cse_opts.enable_cse = false;
  const UezatoCoder no_cse(rs.parity_matrix(), no_cse_opts);

  const auto data = random_bytes(params.k * unit, 55);
  tensor::AlignedBuffer<std::uint8_t> a(params.r * unit), b(params.r * unit);
  with_cse.apply(data.span(), a.span(), unit);
  no_cse.apply(data.span(), b.span(), unit);
  ASSERT_TRUE(
      std::equal(a.span().begin(), a.span().end(), b.span().begin()));
}

TEST(UezatoCse, MaxTempsCapRespected) {
  const ec::ReedSolomon rs(ec::CodeParams{10, 4, 8});
  UezatoCoder::Options opts;
  opts.max_temps = 5;
  const UezatoCoder coder(rs.parity_matrix(), opts);
  EXPECT_LE(coder.num_temps(), 5u);

  // And still correct.
  const std::size_t unit = 512;
  const auto data = random_bytes(10 * unit, 66);
  tensor::AlignedBuffer<std::uint8_t> got(4 * unit);
  tensor::AlignedBuffer<std::uint8_t> expect(4 * unit);
  coder.apply(data.span(), got.span(), unit);
  NaiveBitmatrixCoder(rs.parity_matrix()).apply(data.span(), expect.span(), unit);
  ASSERT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                         got.span().begin()));
}

TEST(Uezato, OptionValidation) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  UezatoCoder::Options opts;
  opts.block_bytes = 0;
  EXPECT_THROW(UezatoCoder(rs.parity_matrix(), opts), std::invalid_argument);
  opts.block_bytes = 12;  // not a multiple of 8
  EXPECT_THROW(UezatoCoder(rs.parity_matrix(), opts), std::invalid_argument);
}

TEST(Uezato, SizeValidation) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const UezatoCoder coder(rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> data(4 * 64), parity(2 * 64);
  EXPECT_THROW(coder.apply(data.span(), parity.span(), 63),
               std::invalid_argument);
  EXPECT_THROW(coder.apply(data.span().subspan(0, 64), parity.span(), 64),
               std::invalid_argument);
}

}  // namespace
}  // namespace tvmec::baseline
