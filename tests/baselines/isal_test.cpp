#include "baselines/isal_like.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "ec/reed_solomon.h"
#include "tensor/variant.h"

namespace tvmec::baseline {
namespace {

using testutil::random_bytes;

/// Restores the process-wide forced variant on scope exit.
struct ForceRestorer {
  std::optional<tensor::KernelVariant> prev = tensor::forced_variant();
  ~ForceRestorer() { tensor::set_forced_variant(prev); }
};

struct IsalCase {
  ec::CodeParams params;
  std::size_t unit;
};

class IsalTest : public ::testing::TestWithParam<IsalCase> {};

TEST_P(IsalTest, MatchesGfReference) {
  const auto& [params, unit] = GetParam();
  const ec::ReedSolomon rs(params, ec::RsFamily::VandermondeSystematic);
  const IsalCoder coder(rs.parity_matrix());
  const auto data = random_bytes(params.k * unit, 13 * params.k + unit);
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  std::vector<std::uint8_t> expect(params.r * unit);
  coder.apply(data.span(), got.span(), unit);
  rs.encode_reference(data.span(), expect, unit);
  ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.span().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IsalTest,
    ::testing::Values(IsalCase{{4, 2, 8}, 1024}, IsalCase{{10, 4, 8}, 4096},
                      // Sizes that exercise the scalar tail after the
                      // 32-byte vector loop: not multiples of 32.
                      IsalCase{{6, 3, 8}, 1000}, IsalCase{{8, 2, 8}, 17},
                      IsalCase{{3, 2, 8}, 31}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.params.k) + "r" +
             std::to_string(info.param.params.r) + "u" +
             std::to_string(info.param.unit);
    });

TEST(Isal, RequiresGf8) {
  const ec::ReedSolomon rs4(ec::CodeParams{4, 2, 4});
  EXPECT_THROW(IsalCoder coder(rs4.parity_matrix()), std::invalid_argument);
  const ec::ReedSolomon rs16(ec::CodeParams{4, 2, 16});
  EXPECT_THROW(IsalCoder coder(rs16.parity_matrix()), std::invalid_argument);
}

TEST(Isal, ArbitraryUnitSizesAccepted) {
  // Unlike bitmatrix backends, ISA-L handles any byte length.
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const IsalCoder coder(rs.parity_matrix());
  for (const std::size_t unit : {1u, 7u, 33u, 100u}) {
    const auto data = random_bytes(4 * unit, unit);
    tensor::AlignedBuffer<std::uint8_t> parity(2 * unit);
    std::vector<std::uint8_t> expect(2 * unit);
    coder.apply(data.span(), parity.span(), unit);
    rs.encode_reference(data.span(), expect, unit);
    ASSERT_TRUE(
        std::equal(expect.begin(), expect.end(), parity.span().begin()))
        << "unit=" << unit;
  }
}

TEST(Isal, SizeValidation) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const IsalCoder coder(rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> data(4 * 64), parity(2 * 64);
  EXPECT_THROW(coder.apply(data.span(), parity.span(), 0),
               std::invalid_argument);
  EXPECT_THROW(coder.apply(data.span().subspan(0, 3 * 64), parity.span(), 64),
               std::invalid_argument);
}

TEST(Isal, SimdPathReportsRuntimeDispatch) {
  // has_simd_path() is a runtime statement about this host + this force
  // state, not about the flags the library was compiled with.
  ForceRestorer restore;
  tensor::set_forced_variant(std::nullopt);
  const IsalPath path = IsalCoder::active_path();
  EXPECT_EQ(IsalCoder::has_simd_path(), path != IsalPath::Scalar);
  if (path == IsalPath::Gfni) {
    EXPECT_TRUE(tensor::cpu_features().gfni);
    EXPECT_TRUE(tensor::cpu_features().avx2);
  }
  if (path == IsalPath::Vpshufb) EXPECT_TRUE(tensor::cpu_features().avx2);

  tensor::set_forced_variant(tensor::KernelVariant::Scalar);
  EXPECT_EQ(IsalCoder::active_path(), IsalPath::Scalar);
  EXPECT_FALSE(IsalCoder::has_simd_path());
}

TEST(Isal, EveryDispatchPathProducesIdenticalParity) {
  // Cross-path differential: force each tier this host offers and demand
  // byte-identical parity. Unit sizes straddle the 32-byte vector width
  // so both the vector loop and the software tail are compared.
  ForceRestorer restore;
  const ec::ReedSolomon rs(ec::CodeParams{10, 4, 8});
  const IsalCoder coder(rs.parity_matrix());
  for (const std::size_t unit : {31u, 32u, 100u, 4096u}) {
    const auto data = random_bytes(10 * unit, 97 + unit);

    tensor::set_forced_variant(tensor::KernelVariant::Scalar);
    ASSERT_EQ(IsalCoder::active_path(), IsalPath::Scalar);
    tensor::AlignedBuffer<std::uint8_t> scalar_out(4 * unit);
    coder.apply(data.span(), scalar_out.span(), unit);

    for (const tensor::KernelVariant v : tensor::available_variants()) {
      if (v == tensor::KernelVariant::Scalar) continue;
      tensor::set_forced_variant(v);
      tensor::AlignedBuffer<std::uint8_t> out(4 * unit);
      coder.apply(data.span(), out.span(), unit);
      ASSERT_TRUE(std::equal(scalar_out.span().begin(),
                             scalar_out.span().end(), out.span().begin()))
          << "unit=" << unit << " variant=" << tensor::to_string(v)
          << " path=" << to_string(IsalCoder::active_path());
    }
  }
}

TEST(Isal, IdentityCoefficientsCopyData) {
  const gf::Field& f = gf::Field::of(8);
  const IsalCoder coder(gf::Matrix::identity(f, 3));
  const auto data = random_bytes(3 * 96, 21);
  tensor::AlignedBuffer<std::uint8_t> out(3 * 96);
  coder.apply(data.span(), out.span(), 96);
  ASSERT_TRUE(std::equal(data.span().begin(), data.span().end(),
                         out.span().begin()));
}

}  // namespace
}  // namespace tvmec::baseline
