#include "baselines/naive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "../test_util.h"
#include "ec/reed_solomon.h"

namespace tvmec::baseline {
namespace {

using testutil::random_bytes;

struct NaiveCase {
  ec::CodeParams params;
  std::size_t unit;
};

class NaiveTest : public ::testing::TestWithParam<NaiveCase> {};

/// The bitmatrix triple loop must agree byte-for-byte with element-wise
/// GF(2^w) arithmetic under the bitpacket embedding — the core §2.1
/// equivalence between field math and XOR/AND loops.
TEST_P(NaiveTest, MatchesBitpacketGfReference) {
  const auto& [params, unit] = GetParam();
  const ec::ReedSolomon rs(params);
  const NaiveBitmatrixCoder coder(rs.parity_matrix());
  EXPECT_EQ(coder.in_units(), params.k);
  EXPECT_EQ(coder.out_units(), params.r);

  const auto data = random_bytes(params.k * unit, 42 + params.k);
  tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
  std::vector<std::uint8_t> expect(params.r * unit);
  coder.apply(data.span(), got.span(), unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       expect, unit);
  ASSERT_TRUE(std::equal(expect.begin(), expect.end(), got.span().begin()));
}

/// The bitpacket and byte embeddings are intentionally different
/// encodings (see apply_matrix_reference_bitpacket docs): a bitmatrix
/// encoder's bytes must NOT be compared against an ISA-L-style encoder's.
TEST(NaiveEmbedding, DiffersFromByteEmbedding) {
  const ec::CodeParams params{4, 2, 8};
  const std::size_t unit = 512;
  const ec::ReedSolomon rs(params);
  const NaiveBitmatrixCoder coder(rs.parity_matrix());
  const auto data = random_bytes(params.k * unit, 4242);
  tensor::AlignedBuffer<std::uint8_t> bitpacket(params.r * unit);
  std::vector<std::uint8_t> byte_embed(params.r * unit);
  coder.apply(data.span(), bitpacket.span(), unit);
  rs.encode_reference(data.span(), byte_embed, unit);
  EXPECT_FALSE(std::equal(byte_embed.begin(), byte_embed.end(),
                          bitpacket.span().begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NaiveTest,
    ::testing::Values(NaiveCase{{4, 2, 8}, 512}, NaiveCase{{10, 4, 8}, 1024},
                      NaiveCase{{8, 3, 8}, 64}, NaiveCase{{5, 2, 4}, 320},
                      NaiveCase{{6, 3, 16}, 1024}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.params.k) + "r" +
             std::to_string(info.param.params.r) + "w" +
             std::to_string(info.param.params.w) + "u" +
             std::to_string(info.param.unit);
    });

TEST(Naive, RejectsBadUnitSizes) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const NaiveBitmatrixCoder coder(rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> data(4 * 60), parity(2 * 60);
  // 60 is not a multiple of 8*w = 64.
  EXPECT_THROW(coder.apply(data.span(), parity.span(), 60),
               std::invalid_argument);
}

TEST(Naive, RejectsSizeMismatch) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const NaiveBitmatrixCoder coder(rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> data(4 * 64), parity(2 * 64);
  EXPECT_THROW(coder.apply(data.span().subspan(64), parity.span(), 64),
               std::invalid_argument);
  EXPECT_THROW(coder.apply(data.span(), parity.span().subspan(64), 64),
               std::invalid_argument);
}

// Regression: unaligned user buffers used to be rejected with
// std::invalid_argument. They are now staged through aligned scratch and
// must produce byte-identical parity.
TEST(Naive, AcceptsMisalignedBuffers) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const NaiveBitmatrixCoder coder(rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> data(4 * 64 + 1), parity(2 * 64);
  std::mt19937_64 rng(77);
  for (auto& b : data.span()) b = static_cast<std::uint8_t>(rng());

  const auto in_off = data.span().subspan(1, 4 * 64);
  tensor::AlignedBuffer<std::uint8_t> data_aligned(4 * 64);
  std::copy(in_off.begin(), in_off.end(), data_aligned.span().begin());
  tensor::AlignedBuffer<std::uint8_t> expect(2 * 64);
  coder.apply(data_aligned.span(), expect.span(), 64);

  EXPECT_NO_THROW(coder.apply(in_off, parity.span(), 64));
  EXPECT_TRUE(std::equal(parity.span().begin(), parity.span().end(),
                         expect.span().begin()));

  // Misaligned output as well: write into a +1-offset window.
  tensor::AlignedBuffer<std::uint8_t> parity_off(2 * 64 + 1);
  coder.apply(data_aligned.span(), parity_off.span().subspan(1, 2 * 64), 64);
  EXPECT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                         parity_off.span().begin() + 1));
}

}  // namespace
}  // namespace tvmec::baseline
