#include "baselines/jerasure_like.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "baselines/naive.h"
#include "ec/reed_solomon.h"

namespace tvmec::baseline {
namespace {

using testutil::random_bytes;

class JerasureScheduleTest : public ::testing::TestWithParam<JerasureSchedule> {
};

TEST_P(JerasureScheduleTest, MatchesNaiveAcrossShapes) {
  for (const ec::CodeParams params :
       {ec::CodeParams{4, 2, 8}, {10, 4, 8}, {6, 3, 4}, {5, 2, 16}}) {
    const std::size_t unit = 16 * params.w;
    const ec::ReedSolomon rs(params);
    const JerasureCoder coder(rs.parity_matrix(), GetParam());
    const NaiveBitmatrixCoder reference(rs.parity_matrix());

    const auto data = random_bytes(params.k * unit, 7 * params.k + params.w);
    tensor::AlignedBuffer<std::uint8_t> got(params.r * unit);
    tensor::AlignedBuffer<std::uint8_t> expect(params.r * unit);
    coder.apply(data.span(), got.span(), unit);
    reference.apply(data.span(), expect.span(), unit);
    ASSERT_TRUE(std::equal(expect.span().begin(), expect.span().end(),
                           got.span().begin()))
        << "k=" << params.k << " w=" << params.w;
  }
}

TEST_P(JerasureScheduleTest, PtrApiHandlesScatteredUnits) {
  const ec::CodeParams params{6, 3, 8};
  const std::size_t unit = 256;
  const ec::ReedSolomon rs(params);
  const JerasureCoder coder(rs.parity_matrix(), GetParam());

  // Scattered, individually-allocated units (the Jerasure memory model).
  std::vector<tensor::AlignedBuffer<std::uint8_t>> data_units;
  std::vector<const std::uint8_t*> data_ptrs;
  for (std::size_t i = 0; i < params.k; ++i) {
    data_units.push_back(random_bytes(unit, 100 + i));
    data_ptrs.push_back(data_units.back().data());
  }
  std::vector<tensor::AlignedBuffer<std::uint8_t>> parity_units(params.r);
  std::vector<std::uint8_t*> parity_ptrs;
  for (auto& p : parity_units) {
    p = tensor::AlignedBuffer<std::uint8_t>(unit);
    parity_ptrs.push_back(p.data());
  }
  coder.apply_ptrs(data_ptrs, parity_ptrs, unit);

  // Reference over an equivalent contiguous layout (same bitpacket
  // embedding via the naive coder).
  tensor::AlignedBuffer<std::uint8_t> contig(params.k * unit);
  for (std::size_t i = 0; i < params.k; ++i)
    std::copy_n(data_units[i].data(), unit, contig.data() + i * unit);
  tensor::AlignedBuffer<std::uint8_t> expect(params.r * unit);
  NaiveBitmatrixCoder(rs.parity_matrix())
      .apply(contig.span(), expect.span(), unit);
  for (std::size_t i = 0; i < params.r; ++i)
    ASSERT_TRUE(std::equal(
        parity_units[i].span().begin(), parity_units[i].span().end(),
        expect.span().begin() + static_cast<std::ptrdiff_t>(i * unit)));
}

TEST_P(JerasureScheduleTest, PtrApiValidation) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  const JerasureCoder coder(rs.parity_matrix(), GetParam());
  tensor::AlignedBuffer<std::uint8_t> buf(64);
  std::vector<const std::uint8_t*> bad_count = {buf.data()};
  std::vector<std::uint8_t*> parity = {buf.data(), buf.data()};
  EXPECT_THROW(coder.apply_ptrs(bad_count, parity, 64),
               std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(BothSchedules, JerasureScheduleTest,
                         ::testing::Values(JerasureSchedule::Dumb,
                                           JerasureSchedule::Smart),
                         [](const auto& info) {
                           return info.param == JerasureSchedule::Smart
                                      ? "Smart"
                                      : "Dumb";
                         });

TEST(JerasureSchedules, SmartNeverCostsMoreXors) {
  for (const ec::CodeParams params :
       {ec::CodeParams{4, 2, 8}, {10, 4, 8}, {8, 3, 8}}) {
    const ec::ReedSolomon rs(params);
    const JerasureCoder dumb(rs.parity_matrix(), JerasureSchedule::Dumb);
    const JerasureCoder smart(rs.parity_matrix(), JerasureSchedule::Smart);
    EXPECT_LE(smart.xor_ops(), dumb.xor_ops()) << "k=" << params.k;
  }
}

TEST(JerasureSchedules, DumbXorOpsMatchOnesCount) {
  const ec::ReedSolomon rs(ec::CodeParams{6, 3, 8});
  const ec::BitmatrixCode code(rs.parity_matrix());
  const JerasureCoder dumb(rs.parity_matrix(), JerasureSchedule::Dumb);
  // Dumb schedule: each bit-row costs (ones - 1) XORs plus one copy.
  EXPECT_EQ(dumb.xor_ops(), code.ones() - code.bits().rows());
}

TEST(Jerasure, NamesDistinguishSchedules) {
  const ec::ReedSolomon rs(ec::CodeParams{4, 2, 8});
  EXPECT_EQ(JerasureCoder(rs.parity_matrix(), JerasureSchedule::Dumb).name(),
            "jerasure-dumb");
  EXPECT_EQ(JerasureCoder(rs.parity_matrix(), JerasureSchedule::Smart).name(),
            "jerasure-smart");
}

}  // namespace
}  // namespace tvmec::baseline
