# Cross toolchain for the aarch64 CI leg: GNU cross compilers with
# qemu-user as the emulator, so the NEON per-variant kernel TUs compile
# for a second ISA and the variant byte-identity suites actually execute
# (ctest launches every test binary through the emulator).
set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

# -L points qemu at the cross sysroot for the dynamic loader + libc.
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")

set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
# Packages (googletest/benchmark cross-built into a local prefix passed
# via CMAKE_PREFIX_PATH) may resolve from the host-side prefix too.
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE BOTH)
