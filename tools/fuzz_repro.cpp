// fuzz_repro: replay and campaign driver for the cross-backend
// differential fuzzer.
//
//   fuzz_repro "fuzz:v1 s=rs-decode k=6 r=3 w=8 u=128 seed=42 loss=1,3"
//       Replays one reproducer string. Exit 0 when all backends agree,
//       1 on a divergence (first divergent byte printed), 2 on usage or
//       parse errors.
//
//   fuzz_repro --random [--seed S] [--iters N] [--seconds T]
//       Seeded randomized campaign (the nightly CI job): runs N configs
//       (default unbounded) or until T seconds elapse, printing progress.
//       On the first divergence prints the *minimized* reproducer string
//       on stdout — the line to paste into a bug report / regression
//       test — and exits 1.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "testing/diff_fuzzer.h"
#include "testing/fuzz_config.h"

namespace {

int usage() {
  std::cerr
      << "usage: fuzz_repro \"<reproducer string>\"\n"
      << "       fuzz_repro --random [--seed S] [--iters N] [--seconds T]\n";
  return 2;
}

int replay(const std::string& text) {
  tvmec::testing::FuzzConfig config;
  try {
    config = tvmec::testing::parse_repro(text);
  } catch (const std::exception& e) {
    std::cerr << "fuzz_repro: " << e.what() << "\n";
    return 2;
  }
  const auto outcome = tvmec::testing::DiffFuzzer::run_one(config);
  if (outcome.ok) {
    std::cout << "PASS " << tvmec::testing::format_repro(config) << "\n";
    return 0;
  }
  std::cout << "FAIL " << outcome.repro << "\n" << outcome.detail << "\n";
  return 1;
}

int campaign(std::uint64_t seed, std::size_t iters, std::uint64_t seconds) {
  std::cerr << "fuzz_repro: campaign seed=" << seed << " iters=" << iters
            << " seconds=" << seconds << "\n";
  const auto outcome =
      tvmec::testing::DiffFuzzer::run_campaign(seed, iters, seconds * 1000);
  if (outcome.ok) {
    std::cerr << "fuzz_repro: " << outcome.iterations
              << " configs, no divergence\n";
    return 0;
  }
  // The minimized reproducer goes to stdout alone: CI uploads it as the
  // failure artifact and a developer replays it verbatim.
  std::cout << outcome.repro << "\n";
  std::cerr << "fuzz_repro: divergence after " << outcome.iterations
            << " configs\n"
            << outcome.detail << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string first = argv[1];
  if (first != "--random") {
    if (argc != 2) return usage();
    return replay(first);
  }
  std::uint64_t seed = 0;
  std::size_t iters = static_cast<std::size_t>(-1);
  std::uint64_t seconds = 0;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    try {
      if (key == "--seed")
        seed = std::stoull(value);
      else if (key == "--iters")
        iters = std::stoull(value);
      else if (key == "--seconds")
        seconds = std::stoull(value);
      else
        return usage();
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (iters == static_cast<std::size_t>(-1) && seconds == 0) {
    std::cerr << "fuzz_repro: --random needs --iters or --seconds\n";
    return 2;
  }
  return campaign(seed, iters, seconds);
}
