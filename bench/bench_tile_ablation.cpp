// E13 (ablation) — why the schedule space looks the way it does: sweeps
// the microkernel register-tile shape at fixed blocking, showing
//  (a) wide N tiles amortize the per-(row,k) A-mask broadcast,
//  (b) taller M tiles amortize B loads until accumulators spill,
//  (c) the tuner's preferred region (mt4-8 x 16-32) is a real optimum.
// This is the design-choice evidence behind DESIGN.md's schedule menu.
//
// --smoke: skips the google-benchmark sweep and gates on runtime kernel
// dispatch — if CPUID says this host has a SIMD tier but the resolved
// variant is scalar (with no TVMEC_FORCE_VARIANT explaining it), the
// dispatch seam is broken and the run exits nonzero. CI uses this to
// catch "generic build silently fell back to portable code".

#include <benchmark/benchmark.h>

#include <cstring>

#include "bench_util.h"
#include "ec/reed_solomon.h"
#include "tensor/microkernel.h"
#include "tensor/variant.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const gf::Matrix& parity_matrix() {
  static const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  static const gf::Matrix parity = rs.parity_matrix();
  return parity;
}

void print_variant_line() {
  std::printf("active kernel variant: %s (best available: %s%s)\n",
              tensor::to_string(tensor::active_variant()),
              tensor::to_string(tensor::best_variant()),
              tensor::forced_variant() ? ", forced via TVMEC_FORCE_VARIANT"
                                       : "");
}

/// --smoke gate: on hardware with any SIMD tier, an unforced run must
/// not resolve to scalar. Returns the process exit code.
int run_smoke_gate() {
  print_variant_line();
  const tensor::KernelVariant active = tensor::active_variant();
  const tensor::KernelVariant best = tensor::best_variant();
  if (tensor::forced_variant()) {
    std::printf("smoke: variant forced, dispatch gate skipped\n");
    return 0;
  }
  if (best != tensor::KernelVariant::Scalar &&
      active == tensor::KernelVariant::Scalar) {
    std::printf(
        "smoke: FAIL — host offers %s but dispatch resolved scalar\n",
        tensor::to_string(best));
    return 1;
  }
  std::printf("smoke: dispatch OK\n");
  return 0;
}

void bm_tile(benchmark::State& state) {
  tensor::Schedule s;
  s.tile_m = static_cast<int>(state.range(0));
  s.tile_n = static_cast<int>(state.range(1));
  s.block_n = 512;
  core::GemmCoder coder(parity_matrix(), s);
  const auto data = benchutil::random_data(kK * kUnit, 5);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  for (auto _ : state) coder.apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
}
BENCHMARK(bm_tile)
    ->ArgsProduct({{1, 2, 4, 8}, {4, 8, 16, 32, 64}})
    ->ArgNames({"tm", "tn"});

void print_paper_table() {
  benchutil::print_header(
      "E13 (ablation): register-tile shape sweep, GB/s (k=10 r=4, nb512)",
      "wide tiles amortize mask broadcasts; the best region is "
      "mt4-8 x tn16-32 on SIMD builds");
  std::printf("SIMD codegen path: %s\n",
              tensor::xorand_simd_codegen() ? "yes" : "no (portable)");
  print_variant_line();
  std::printf("\n");

  const auto data = benchutil::random_data(kK * kUnit, 6);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  std::printf("%-6s", "tm\\tn");
  for (const int tn : {4, 8, 16, 32, 64}) std::printf("%8d", tn);
  std::printf("\n");
  for (const int tm : {1, 2, 4, 8}) {
    std::printf("%-6d", tm);
    for (const int tn : {4, 8, 16, 32, 64}) {
      tensor::Schedule s;
      s.tile_m = tm;
      s.tile_n = tn;
      s.block_n = 512;
      core::GemmCoder coder(parity_matrix(), s);
      std::printf("%8.2f", benchutil::median_encode_gbps(
                               coder, data.span(), parity.span(), kUnit, 11));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees (and rejects) it.
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (smoke) {
    benchmark::Shutdown();
    return run_smoke_gate();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
