// E16 — thread scaling of the parallel GEMM encode path. The paper's
// multi-core wins (§6, 1.75x on an 8-core Xeon) rest on the GEMM stack
// keeping every core busy. For erasure coding M = out_units*w is tiny
// (32 rows here), so the old M-only partitioning runs out of work at
// M/tile_m chunks and plateaus; N-partitioning (each worker owning a
// contiguous span of data words) scales with the data axis. This bench
// measures encode throughput vs thread count for par_m / par_n / par_mn
// schedules. JSON output: like every bench binary here, pass
// --benchmark_format=json for machine-readable results.

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_util.h"
#include "ec/reed_solomon.h"
#include "tensor/threadpool.h"

namespace {

using namespace tvmec;

// EC-shaped task from the acceptance setup: M = 32 rows of parity words,
// N = 65536 data words per packet row (4 MiB units), K = 80.
constexpr std::size_t kUnit = 4 * 1024 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const gf::Matrix& parity_matrix() {
  static const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  static const gf::Matrix parity = rs.parity_matrix();
  return parity;
}

tensor::Schedule scaling_schedule(tensor::ParAxis axis, int threads) {
  tensor::Schedule s = benchutil::representative_gemm_schedule();
  s.num_threads = threads;
  s.par_axis = axis;
  s.par_grain = 0;  // auto chunking: a few chunks per thread
  return s;
}

void bm_scaling(benchmark::State& state) {
  const auto axis = static_cast<tensor::ParAxis>(state.range(1));
  core::GemmCoder coder(parity_matrix(),
                        scaling_schedule(axis, static_cast<int>(state.range(0))));
  const auto data = benchutil::random_data(kK * kUnit, 16);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  for (auto _ : state) coder.apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
  state.SetLabel(coder.schedule().to_string());
}
BENCHMARK(bm_scaling)
    ->ArgsProduct({{1, 2, 4, 8},
                   {static_cast<long>(tensor::ParAxis::M),
                    static_cast<long>(tensor::ParAxis::N),
                    static_cast<long>(tensor::ParAxis::MN)}})
    ->ArgNames({"threads", "axis"})
    ->UseRealTime();

std::vector<int> thread_points() {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  std::vector<int> points;
  for (int t = 1; t < hw; t *= 2) points.push_back(t);
  points.push_back(hw);
  return points;
}

void print_paper_table() {
  benchutil::print_header(
      "E16: encode throughput vs thread count, GB/s (k=10 r=4 w=8, "
      "4 MiB units: M=32, N=65536 words)",
      "N-partitioned schedules keep scaling with cores; M-only "
      "partitioning plateaus at M/tile_m chunks");

  const tensor::Schedule rep = benchutil::representative_gemm_schedule();
  const std::size_t m_chunks =
      (kR * 8 + static_cast<std::size_t>(rep.tile_m) - 1) /
      static_cast<std::size_t>(rep.tile_m);
  std::printf("pool width: %zu, par_m work chunks available: %zu\n\n",
              tensor::ThreadPool::shared().size(), m_chunks);

  const auto data = benchutil::random_data(kK * kUnit, 17);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);

  std::printf("%-8s %10s %10s %10s\n", "threads", "par_m", "par_n", "par_mn");
  for (const int t : thread_points()) {
    std::printf("%-8d", t);
    for (const tensor::ParAxis axis :
         {tensor::ParAxis::M, tensor::ParAxis::N, tensor::ParAxis::MN}) {
      core::GemmCoder coder(parity_matrix(), scaling_schedule(axis, t));
      std::printf(" %10.2f",
                  benchutil::median_encode_gbps(coder, data.span(),
                                                parity.span(), kUnit, 9));
    }
    std::printf("\n");
  }
  if (std::thread::hardware_concurrency() <= 1)
    std::printf("\n(single hardware thread exposed: scaling cannot "
                "manifest on this machine; run on a multicore host)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
