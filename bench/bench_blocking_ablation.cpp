// E4 — §6.1 blocking-factor ablation for the Uezato baseline: "we
// evaluate various cache blocking factors, but typically find the
// performance using a blocking factor of 2 KB to provide the highest
// performance".
//
// Sweeps the blocking factor from 256 B to 64 KB at (k=10, r=4, w=8,
// 128 KB units) and also reports the CSE on/off ablation.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "baselines/xor_schedule.h"
#include "bench_util.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const std::vector<std::size_t> kFactors = {256,  512,   1024,  2048,
                                           4096, 16384, 65536};

const gf::Matrix& parity_matrix() {
  static const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  static const gf::Matrix parity = rs.parity_matrix();
  return parity;
}

const baseline::UezatoCoder& coder_for(std::size_t block, bool cse) {
  static std::map<std::pair<std::size_t, bool>,
                  std::unique_ptr<baseline::UezatoCoder>>
      cache;
  auto& c = cache[{block, cse}];
  if (!c) {
    baseline::UezatoCoder::Options opts;
    opts.block_bytes = block;
    opts.enable_cse = cse;
    c = std::make_unique<baseline::UezatoCoder>(parity_matrix(), opts);
  }
  return *c;
}

void bm_uezato_blocking(benchmark::State& state) {
  const auto& coder =
      coder_for(static_cast<std::size_t>(state.range(0)), true);
  const auto data = benchutil::random_data(kK * kUnit, 3);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  for (auto _ : state) coder.apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
}
BENCHMARK(bm_uezato_blocking)
    ->Arg(256)
    ->Arg(512)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Arg(16384)
    ->Arg(65536);

void print_paper_table() {
  benchutil::print_header(
      "E4 (Section 6.1): Uezato cache-blocking factor ablation",
      "a 2 KB blocking factor typically performs best");

  const auto data = benchutil::random_data(kK * kUnit, 4);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);

  std::printf("%-12s %14s %14s\n", "block bytes", "CSE GB/s", "no-CSE GB/s");
  double best_gbps = 0;
  std::size_t best_block = 0;
  for (const std::size_t block : kFactors) {
    const double with_cse = benchutil::median_encode_gbps(
        coder_for(block, true), data.span(), parity.span(), kUnit, 15);
    const double without = benchutil::median_encode_gbps(
        coder_for(block, false), data.span(), parity.span(), kUnit, 15);
    if (with_cse > best_gbps) {
      best_gbps = with_cse;
      best_block = block;
    }
    std::printf("%-12zu %14.2f %14.2f\n", block, with_cse, without);
  }
  std::printf("\nbest blocking factor: %zu bytes (paper: 2048)\n", best_block);

  const auto& c = coder_for(2048, true);
  std::printf("CSE stats at 2 KB: %zu temps, %zu XOR ops vs %zu without "
              "CSE (%.1f%% reduction)\n",
              c.num_temps(), c.xor_ops(), c.xor_ops_without_cse(),
              100.0 * (1.0 - static_cast<double>(c.xor_ops()) /
                                 static_cast<double>(c.xor_ops_without_cse())));
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
