// E12 (extension) — small-write parity update: erasure-coded stores
// patch parities on partial writes using code linearity instead of
// re-encoding the whole stripe. Both paths run through the GEMM backend;
// this measures what the delta optimization buys as a function of how
// many units change.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/tvmec.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

core::Codec& codec() {
  static core::Codec c = [] {
    core::Codec codec(ec::CodeParams{kK, kR, 8});
    codec.set_schedule(benchutil::representative_gemm_schedule());
    return codec;
  }();
  return c;
}

tensor::AlignedBuffer<std::uint8_t>& stripe() {
  static tensor::AlignedBuffer<std::uint8_t> s = [] {
    tensor::AlignedBuffer<std::uint8_t> buf((kK + kR) * kUnit);
    const auto data = benchutil::random_data(kK * kUnit, 1);
    std::copy(data.span().begin(), data.span().end(), buf.data());
    codec().encode(
        std::span<const std::uint8_t>(buf.data(), kK * kUnit),
        std::span<std::uint8_t>(buf.data() + kK * kUnit, kR * kUnit), kUnit);
    return buf;
  }();
  return s;
}

void bm_delta_update(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  const auto new_data = benchutil::random_data(changed * kUnit, 2);
  for (auto _ : state) {
    for (std::size_t u = 0; u < changed; ++u)
      codec().update_unit(stripe().span(), u,
                          new_data.span().subspan(u * kUnit, kUnit), kUnit);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(changed * kUnit));
}

void bm_full_reencode(benchmark::State& state) {
  const std::size_t changed = static_cast<std::size_t>(state.range(0));
  const auto new_data = benchutil::random_data(changed * kUnit, 3);
  for (auto _ : state) {
    for (std::size_t u = 0; u < changed; ++u)
      std::copy(new_data.span().begin() +
                    static_cast<std::ptrdiff_t>(u * kUnit),
                new_data.span().begin() +
                    static_cast<std::ptrdiff_t>((u + 1) * kUnit),
                stripe().data() + u * kUnit);
    codec().encode(
        std::span<const std::uint8_t>(stripe().data(), kK * kUnit),
        std::span<std::uint8_t>(stripe().data() + kK * kUnit, kR * kUnit),
        kUnit);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(changed * kUnit));
}

BENCHMARK(bm_delta_update)->Arg(1)->Arg(2)->Arg(5)->Arg(10);
BENCHMARK(bm_full_reencode)->Arg(1)->Arg(2)->Arg(5)->Arg(10);

void print_paper_table() {
  benchutil::print_header(
      "E12 (extension): small-write parity update via linearity",
      "delta updates beat full re-encode when few of the k units change; "
      "crossover approaches k as more units change");

  std::printf("%-16s %18s %18s %10s\n", "changed units", "delta us/write",
              "re-encode us/write", "speedup");
  for (const std::size_t changed : {1u, 2u, 5u, 10u}) {
    const auto new_data = benchutil::random_data(changed * kUnit, 4);
    const double delta_secs = tune::measure_seconds_median(
        [&] {
          for (std::size_t u = 0; u < changed; ++u)
            codec().update_unit(stripe().span(), u,
                                new_data.span().subspan(u * kUnit, kUnit),
                                kUnit);
        },
        15);
    const double full_secs = tune::measure_seconds_median(
        [&] {
          codec().encode(
              std::span<const std::uint8_t>(stripe().data(), kK * kUnit),
              std::span<std::uint8_t>(stripe().data() + kK * kUnit,
                                      kR * kUnit),
              kUnit);
        },
        15);
    std::printf("%-16zu %18.1f %18.1f %9.2fx\n", changed, delta_secs * 1e6,
                full_secs * 1e6, full_secs / delta_secs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
