// E19 — the serving layer: batched asynchronous request serving vs
// one-at-a-time execution. The paper's thesis is that EC is a GEMM and
// GEMM efficiency grows with operand size; a front-end serving workload
// of small concurrent requests squanders that unless requests coalesce.
// This bench drives EcService with a closed-loop load generator and
// reports throughput and p50/p99/p99.9 latency vs offered load (client
// count) for the batched service against the batching=false ablation,
// then sweeps the batch-size cap at fixed load, and finally demonstrates
// admission control (bounded queue, Overloaded rejections) under an
// open-loop burst. Pass --smoke for the CI-sized run.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "serve/ec_service.h"
#include "tensor/threadpool.h"

namespace {

using namespace tvmec;

// Small-request serving shape: per request the GEMM sees only
// N = kUnit/8 = 512 words — too little for thread partitioning to hand
// out; coalescing 32 such requests restores a 16k-word N.
constexpr std::size_t kUnit = 4 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const serve::CodecKey kKey{kK, kR, 8, ec::RsFamily::CauchyGood};

bool g_smoke = false;

struct LoadResult {
  double gbps = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  double mean_batch = 0;
  std::uint64_t ok = 0, rejected = 0;
};

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// Closed-loop load: `clients` threads each submit-and-wait in a loop.
/// Offered load rises with the client count; the service coalesces
/// whatever overlaps in the queue.
LoadResult run_closed_loop(std::size_t clients, std::size_t per_client,
                           bool batching, std::size_t batch_cap) {
  serve::ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.batching = batching;
  cfg.batch.max_batch_requests = batch_cap;
  cfg.batch.queue_capacity = 4096;  // closed loop: never the bottleneck
  serve::EcService service(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto data =
          benchutil::random_data(kK * kUnit, 0xE19 + 977 * c);
      tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
      for (std::size_t i = 0; i < per_client; ++i) {
        serve::EcFuture f =
            service.submit_encode(kKey, data.span(), parity.span(), kUnit);
        f.wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.shutdown();

  const serve::ServeStatsSnapshot s = service.stats();
  LoadResult r;
  r.ok = s.completed_ok;
  r.rejected = s.rejected_overload;
  r.gbps = static_cast<double>(r.ok) * static_cast<double>(kK * kUnit) /
           secs / 1e9;
  r.p50_us = us(s.total_ns.percentile(50));
  r.p99_us = us(s.total_ns.percentile(99));
  r.p999_us = us(s.total_ns.percentile(99.9));
  r.mean_batch = s.batch_width.mean();
  return r;
}

void print_load_sweep() {
  benchutil::print_header(
      "E19a: closed-loop serving, batched vs one-at-a-time "
      "(k=10 r=4 w=8, 4 KiB units, 1 service worker)",
      "coalescing concurrent small requests into one wide-N GEMM lifts "
      "throughput and tames tail latency as offered load grows");

  const std::size_t per_client = g_smoke ? 20 : 200;
  const std::vector<std::size_t> client_counts =
      g_smoke ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

  std::printf("%-8s | %9s %8s %8s %9s %6s | %9s %8s %8s %9s %6s\n", "clients",
              "batched", "p50us", "p99us", "p99.9us", "avgB", "unbatch",
              "p50us", "p99us", "p99.9us", "avgB");
  std::printf("%-8s | %9s %8s %8s %9s %6s | %9s %8s %8s %9s %6s\n", "", "GB/s",
              "", "", "", "", "GB/s", "", "", "", "");
  for (const std::size_t clients : client_counts) {
    const LoadResult b = run_closed_loop(clients, per_client, true, 32);
    const LoadResult u = run_closed_loop(clients, per_client, false, 32);
    std::printf(
        "%-8zu | %9.2f %8.0f %8.0f %9.0f %6.1f | %9.2f %8.0f %8.0f %9.0f "
        "%6.1f\n",
        clients, b.gbps, b.p50_us, b.p99_us, b.p999_us, b.mean_batch, u.gbps,
        u.p50_us, u.p99_us, u.p999_us, u.mean_batch);
  }
}

void print_batch_cap_sweep() {
  benchutil::print_header(
      "E19b: batch-size cap sweep at fixed load",
      "wider batches amortize dispatch until the cap exceeds the "
      "concurrently queued work");

  const std::size_t clients = g_smoke ? 4 : 16;
  const std::size_t per_client = g_smoke ? 20 : 200;
  const std::vector<std::size_t> caps =
      g_smoke ? std::vector<std::size_t>{1, 8}
              : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

  std::printf("(%zu clients)\n", clients);
  std::printf("%-8s %9s %8s %8s %9s %6s\n", "cap", "GB/s", "p50us", "p99us",
              "p99.9us", "avgB");
  for (const std::size_t cap : caps) {
    const LoadResult r = run_closed_loop(clients, per_client, true, cap);
    std::printf("%-8zu %9.2f %8.0f %8.0f %9.0f %6.1f\n", cap, r.gbps,
                r.p50_us, r.p99_us, r.p999_us, r.mean_batch);
  }
}

void print_admission_control() {
  benchutil::print_header(
      "E19c: admission control under an open-loop burst",
      "a bounded queue rejects the overflow immediately (Overloaded) "
      "instead of buffering without bound");

  const std::size_t capacity = 64;
  const std::size_t burst = g_smoke ? 128 : 256;

  serve::ServiceConfig cfg;
  cfg.num_workers = 0;  // hold the queue closed while the burst lands
  cfg.batch.queue_capacity = capacity;
  cfg.batch.max_batch_requests = 32;
  serve::EcService service(cfg);

  const auto data = benchutil::random_data(kK * kUnit, 0xE19C);
  std::vector<tensor::AlignedBuffer<std::uint8_t>> parities;
  parities.reserve(burst);
  std::vector<serve::EcFuture> futures;
  futures.reserve(burst);
  for (std::size_t i = 0; i < burst; ++i) {
    parities.emplace_back(kR * kUnit);
    futures.push_back(service.submit_encode(kKey, data.span(),
                                            parities.back().span(), kUnit));
  }
  service.run_pending();
  service.shutdown();

  const serve::ServeStatsSnapshot s = service.stats();
  std::printf(
      "queue capacity %zu, burst of %zu requests:\n"
      "  accepted %llu, rejected (Overloaded) %llu, served ok %llu\n"
      "  identity: submitted == accepted + rejected: %s\n",
      capacity, burst, static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected_overload),
      static_cast<unsigned long long>(s.completed_ok),
      s.submitted == s.accepted + s.rejected_overload ? "ok" : "VIOLATED");
}

void bm_submit_wait(benchmark::State& state) {
  serve::ServiceConfig cfg;
  cfg.batching = state.range(0) != 0;
  serve::EcService service(cfg);
  const auto data = benchutil::random_data(kK * kUnit, 0xE19D);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  for (auto _ : state) {
    serve::EcFuture f =
        service.submit_encode(kKey, data.span(), parity.span(), kUnit);
    f.wait();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (!g_smoke) {
    benchmark::RegisterBenchmark("bm_submit_wait", bm_submit_wait)
        ->Arg(1)
        ->Arg(0)
        ->ArgName("batching")
        ->UseRealTime();
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();

  // Throwaway run: spin up the shared pool, fault in pages, ramp the
  // CPU governor — so the first table cell isn't charged for it.
  run_closed_loop(2, g_smoke ? 10 : 50, true, 32);

  print_load_sweep();
  print_batch_cap_sweep();
  print_admission_control();
  if (std::thread::hardware_concurrency() <= 1)
    std::printf(
        "\n(single hardware thread exposed: client threads and the service "
        "worker time-share one core, so the batching win is dispatch-"
        "amortization only; run on a multicore host for the full effect)\n");
  return 0;
}
