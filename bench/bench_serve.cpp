// E19 — the serving layer: batched asynchronous request serving vs
// one-at-a-time execution. The paper's thesis is that EC is a GEMM and
// GEMM efficiency grows with operand size; a front-end serving workload
// of small concurrent requests squanders that unless requests coalesce.
// This bench drives EcService with a closed-loop load generator and
// reports throughput and p50/p99/p99.9 latency vs offered load (client
// count) for the batched service against the batching=false ablation,
// then sweeps the batch-size cap at fixed load, and finally demonstrates
// admission control (bounded queue, Overloaded rejections) under an
// open-loop burst. Pass --smoke for the CI-sized run.
//
// E20 (overload protection) rides in the same binary: goodput under a
// 4x-overloaded closed loop with deadline shedding + watchdog
// cancellation on vs off, the per-tile cancellation-check overhead, and
// (with --chaos) a breaker/fault-injection smoke whose counter
// identities gate the exit code.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/tvmec.h"
#include "serve/ec_service.h"
#include "tensor/cancel.h"
#include "tensor/threadpool.h"

namespace {

using namespace tvmec;

// Small-request serving shape: per request the GEMM sees only
// N = kUnit/8 = 512 words — too little for thread partitioning to hand
// out; coalescing 32 such requests restores a 16k-word N.
constexpr std::size_t kUnit = 4 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const serve::CodecKey kKey{kK, kR, 8, ec::RsFamily::CauchyGood};

bool g_smoke = false;

struct LoadResult {
  double gbps = 0;
  double p50_us = 0, p99_us = 0, p999_us = 0;
  double mean_batch = 0;
  std::uint64_t ok = 0, rejected = 0;
};

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

/// Closed-loop load: `clients` threads each submit-and-wait in a loop.
/// Offered load rises with the client count; the service coalesces
/// whatever overlaps in the queue.
LoadResult run_closed_loop(std::size_t clients, std::size_t per_client,
                           bool batching, std::size_t batch_cap) {
  serve::ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.batching = batching;
  cfg.batch.max_batch_requests = batch_cap;
  cfg.batch.queue_capacity = 4096;  // closed loop: never the bottleneck
  serve::EcService service(cfg);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto data =
          benchutil::random_data(kK * kUnit, 0xE19 + 977 * c);
      tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
      for (std::size_t i = 0; i < per_client; ++i) {
        serve::EcFuture f =
            service.submit_encode(kKey, data.span(), parity.span(), kUnit);
        f.wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.shutdown();

  const serve::ServeStatsSnapshot s = service.stats();
  LoadResult r;
  r.ok = s.completed_ok;
  r.rejected = s.rejected_overload;
  r.gbps = static_cast<double>(r.ok) * static_cast<double>(kK * kUnit) /
           secs / 1e9;
  r.p50_us = us(s.total_ns.percentile(50));
  r.p99_us = us(s.total_ns.percentile(99));
  r.p999_us = us(s.total_ns.percentile(99.9));
  r.mean_batch = s.batch_width.mean();
  return r;
}

void print_load_sweep() {
  benchutil::print_header(
      "E19a: closed-loop serving, batched vs one-at-a-time "
      "(k=10 r=4 w=8, 4 KiB units, 1 service worker)",
      "coalescing concurrent small requests into one wide-N GEMM lifts "
      "throughput and tames tail latency as offered load grows");

  const std::size_t per_client = g_smoke ? 20 : 200;
  const std::vector<std::size_t> client_counts =
      g_smoke ? std::vector<std::size_t>{1, 4}
              : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

  std::printf("%-8s | %9s %8s %8s %9s %6s | %9s %8s %8s %9s %6s\n", "clients",
              "batched", "p50us", "p99us", "p99.9us", "avgB", "unbatch",
              "p50us", "p99us", "p99.9us", "avgB");
  std::printf("%-8s | %9s %8s %8s %9s %6s | %9s %8s %8s %9s %6s\n", "", "GB/s",
              "", "", "", "", "GB/s", "", "", "", "");
  for (const std::size_t clients : client_counts) {
    const LoadResult b = run_closed_loop(clients, per_client, true, 32);
    const LoadResult u = run_closed_loop(clients, per_client, false, 32);
    std::printf(
        "%-8zu | %9.2f %8.0f %8.0f %9.0f %6.1f | %9.2f %8.0f %8.0f %9.0f "
        "%6.1f\n",
        clients, b.gbps, b.p50_us, b.p99_us, b.p999_us, b.mean_batch, u.gbps,
        u.p50_us, u.p99_us, u.p999_us, u.mean_batch);
  }
}

void print_batch_cap_sweep() {
  benchutil::print_header(
      "E19b: batch-size cap sweep at fixed load",
      "wider batches amortize dispatch until the cap exceeds the "
      "concurrently queued work");

  const std::size_t clients = g_smoke ? 4 : 16;
  const std::size_t per_client = g_smoke ? 20 : 200;
  const std::vector<std::size_t> caps =
      g_smoke ? std::vector<std::size_t>{1, 8}
              : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

  std::printf("(%zu clients)\n", clients);
  std::printf("%-8s %9s %8s %8s %9s %6s\n", "cap", "GB/s", "p50us", "p99us",
              "p99.9us", "avgB");
  for (const std::size_t cap : caps) {
    const LoadResult r = run_closed_loop(clients, per_client, true, cap);
    std::printf("%-8zu %9.2f %8.0f %8.0f %9.0f %6.1f\n", cap, r.gbps,
                r.p50_us, r.p99_us, r.p999_us, r.mean_batch);
  }
}

void print_admission_control() {
  benchutil::print_header(
      "E19c: admission control under an open-loop burst",
      "a bounded queue rejects the overflow immediately (Overloaded) "
      "instead of buffering without bound");

  const std::size_t capacity = 64;
  const std::size_t burst = g_smoke ? 128 : 256;

  serve::ServiceConfig cfg;
  cfg.num_workers = 0;  // hold the queue closed while the burst lands
  cfg.batch.queue_capacity = capacity;
  cfg.batch.max_batch_requests = 32;
  serve::EcService service(cfg);

  const auto data = benchutil::random_data(kK * kUnit, 0xE19C);
  std::vector<tensor::AlignedBuffer<std::uint8_t>> parities;
  parities.reserve(burst);
  std::vector<serve::EcFuture> futures;
  futures.reserve(burst);
  for (std::size_t i = 0; i < burst; ++i) {
    parities.emplace_back(kR * kUnit);
    futures.push_back(service.submit_encode(kKey, data.span(),
                                            parities.back().span(), kUnit));
  }
  service.run_pending();
  service.shutdown();

  const serve::ServeStatsSnapshot s = service.stats();
  std::printf(
      "queue capacity %zu, burst of %zu requests:\n"
      "  accepted %llu, rejected (Overloaded) %llu, served ok %llu\n"
      "  identity: submitted == accepted + rejected: %s\n",
      capacity, burst, static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.rejected_overload),
      static_cast<unsigned long long>(s.completed_ok),
      s.submitted == s.accepted + s.rejected_overload ? "ok" : "VIOLATED");
}

// ---- E20: overload protection ---------------------------------------------

// Overload shape: requests big enough (1.25 MiB of data) that kernel
// times dwarf scheduler noise even on a single exposed core, batches
// capped small so the queue can actually get several batch-times deep.
constexpr std::size_t kBigUnit = 128 * 1024;
constexpr std::size_t kWindow = 8;        // outstanding per client
constexpr std::size_t kOverloadBatch = 4;

struct OverloadResult {
  double goodput_gbps = 0;      // deadline-met completions only
  std::uint64_t good = 0;       // Ok and total <= deadline budget
  std::uint64_t ok = 0, shed = 0, expired = 0;
  double max_overshoot_us = 0;  // worst completion past its deadline
  double p99_service_us = 0;
  double max_service_us = 0;    // worst batch-service time, for the bound
};

/// Overloaded loop: `clients` threads each keep kWindow requests in
/// flight (submit-ahead), so clients x kWindow requests compete for a
/// deadline budget that only ~a quarter of them can meet — a 4x
/// overload. With protection on, doomed requests are shed at admission
/// (queue-wait EWMA) and all-dead batches are cancelled mid-kernel by
/// the watchdog; off reproduces the PR-5 behavior (queue everything,
/// drop only at batch formation, kernels run to completion).
OverloadResult run_overload(std::size_t clients, std::size_t per_client,
                            std::chrono::nanoseconds deadline,
                            bool protection) {
  serve::ServiceConfig cfg;
  cfg.num_workers = 1;
  cfg.batch.max_batch_requests = kOverloadBatch;
  cfg.batch.queue_capacity = 4096;
  cfg.batch.deadline_shedding = protection;
  cfg.watchdog.enabled = protection;
  cfg.watchdog.poll = std::chrono::milliseconds(1);
  serve::EcService service(cfg);

  std::mutex merge_mutex;
  std::int64_t max_overshoot_ns = 0;
  std::atomic<std::uint64_t> good{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto data = benchutil::random_data(kK * kBigUnit, 0xE20 + 977 * c);
      // One parity buffer per in-flight slot: a buffer may only be
      // reused once its future completed.
      std::vector<tensor::AlignedBuffer<std::uint8_t>> parity;
      for (std::size_t i = 0; i < kWindow; ++i)
        parity.emplace_back(kR * kBigUnit);
      std::vector<serve::EcFuture> window;
      std::int64_t local_overshoot = 0;
      const auto reap = [&](serve::EcFuture& f) {
        const serve::EcResult& r = f.wait();
        if (r.status == serve::RequestStatus::Shed) {
          // Client-side retry backoff: a shed response arrives in
          // microseconds, and hammering the admission check from four
          // client threads would starve the worker on a single exposed
          // core. Real clients back off on load-shed errors too.
          std::this_thread::sleep_for(deadline / 16);
          return;
        }
        const std::int64_t overshoot = r.total.count() - deadline.count();
        local_overshoot = std::max(local_overshoot, overshoot);
        if (r.status == serve::RequestStatus::Ok && overshoot <= 0)
          good.fetch_add(1, std::memory_order_relaxed);
      };
      for (std::size_t i = 0; i < per_client; ++i) {
        if (window.size() == kWindow) {
          reap(window.front());
          window.erase(window.begin());
        }
        window.push_back(service.submit_encode(
            kKey, data.span(), parity[i % kWindow].span(), kBigUnit,
            deadline));
      }
      for (auto& f : window) reap(f);
      std::lock_guard lock(merge_mutex);
      max_overshoot_ns = std::max(max_overshoot_ns, local_overshoot);
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.shutdown();

  const serve::ServeStatsSnapshot s = service.stats();
  OverloadResult r;
  r.good = good.load();
  r.ok = s.completed_ok;
  r.shed = s.rejected_shed;
  r.expired = s.expired;
  r.goodput_gbps = static_cast<double>(r.good) *
                   static_cast<double>(kK * kBigUnit) / secs / 1e9;
  r.max_overshoot_us = us(static_cast<std::uint64_t>(
      std::max<std::int64_t>(max_overshoot_ns, 0)));
  r.p99_service_us = us(s.service_ns.percentile(99));
  r.max_service_us = us(s.service_ns.max());
  return r;
}

void print_goodput_overload() {
  benchutil::print_header(
      "E20a: goodput under 4x overload, shedding + cancellation on vs off",
      "shedding doomed requests at admission and cancelling all-dead "
      "batches mid-kernel spends the CPU only on requests that can still "
      "meet their deadline");

  // Long enough that the overloaded steady state dominates the startup
  // ramp (the first kWindow requests per client see an empty queue and
  // meet their deadlines in either mode) AND averages over the off-mode
  // sawtooth: without protection the backlog grows until a run of
  // requests mass-expires at formation, the drops drain the queue in
  // microseconds, and the next few fresh submissions transiently meet
  // their deadlines again.
  const std::size_t clients = 4;
  const std::size_t per_client = g_smoke ? 400 : 1200;

  // Unloaded per-request time t1 sets the budget: 6 x t1 fits an
  // admitted request comfortably (~2 batch-times), while the offered
  // window of clients x kWindow = 32 requests needs ~24 x t1 to drain —
  // a 4x overload against the deadline.
  std::chrono::nanoseconds t1{0};
  {
    serve::ServiceConfig cfg;
    cfg.num_workers = 1;
    serve::EcService service(cfg);
    const auto data = benchutil::random_data(kK * kBigUnit, 0xE20A);
    tensor::AlignedBuffer<std::uint8_t> parity(kR * kBigUnit);
    const auto m0 = std::chrono::steady_clock::now();
    constexpr int kProbe = 8;
    for (int i = 0; i < kProbe; ++i)
      service
          .submit_encode(kKey, data.span(), parity.span(), kBigUnit)
          .wait();
    t1 = std::chrono::duration_cast<std::chrono::nanoseconds>(
        (std::chrono::steady_clock::now() - m0) / kProbe);
  }
  const auto deadline = 6 * t1;

  std::printf(
      "(%zu clients x %zu in flight, %zu KiB units, deadline 6 x t1 = "
      "%.0f us)\n",
      clients, kWindow, kBigUnit / 1024,
      us(static_cast<std::uint64_t>(deadline.count())));
  std::printf("%-12s | %9s %7s %7s %7s | %12s %12s\n", "protection",
              "goodput", "good", "shed", "expired", "overshoot_us",
              "p99svc_us");
  const char* bound_note = nullptr;
  for (const bool protection : {true, false}) {
    const OverloadResult r =
        run_overload(clients, per_client, deadline, protection);
    std::printf("%-12s | %9.2f %7llu %7llu %7llu | %12.0f %12.0f\n",
                protection ? "on" : "off", r.goodput_gbps,
                static_cast<unsigned long long>(r.good),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.expired),
                r.max_overshoot_us, r.p99_service_us);
    // The watchdog only aborts batches whose members are *all* dead, so
    // a request sharing a batch with a live one can overshoot by up to
    // that batch's service time (plus the watchdog poll). The bound
    // therefore uses the max observed batch service — the overshooting
    // request rides exactly the batch that set it.
    if (protection)
      bound_note = r.max_overshoot_us <= r.max_service_us + 2000
                       ? "bounded by ~one batch-service time: ok"
                       : "bounded by ~one batch-service time: EXCEEDED";
  }
  std::printf("deadline overshoot with protection on: %s\n", bound_note);
}

/// E20b: the cost of the cooperative-cancellation hooks themselves — the
/// same wide batched encode with no token vs a live (never-fired) token,
/// serial kernel so every per-chunk poll is on the measured path.
void print_cancel_overhead() {
  benchutil::print_header(
      "E20b: per-tile cancellation-check overhead",
      "a relaxed atomic load per tile chunk; the acceptance bar is < 2%");

  core::Codec codec(ec::CodeParams{kK, kR, 8}, ec::RsFamily::CauchyGood);
  constexpr std::size_t kBatch = 32;
  std::vector<tensor::AlignedBuffer<std::uint8_t>> data, parity;
  std::vector<ec::CoderBatchItem> items;
  for (std::size_t i = 0; i < kBatch; ++i) {
    data.push_back(benchutil::random_data(kK * kUnit, 0xE20B + i));
    parity.emplace_back(kR * kUnit);
    items.push_back({data.back().span(), parity.back().span(), kUnit});
  }

  const std::size_t reps = g_smoke ? 40 : 200;
  const auto time_once = [&](const tensor::CancelToken& token) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < reps; ++i)
      codec.encode_batch(items, /*max_threads=*/1, token);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Warm both arms once, then interleave the trials (null, live, null,
  // live, ...) and take best-of per arm: measuring the arms in separate
  // blocks lets slow machine drift — thermal throttling, competing load
  // on a single exposed core — masquerade as checking overhead.
  tensor::CancelSource source;
  time_once(tensor::CancelToken{});
  time_once(source.token());
  double t_null = 1e30, t_live = 1e30;
  for (int trial = 0; trial < 7; ++trial) {
    t_null = std::min(t_null, time_once(tensor::CancelToken{}));
    t_live = std::min(t_live, time_once(source.token()));
  }
  const double bytes = static_cast<double>(reps * kBatch * kK * kUnit);
  const double overhead = (t_live - t_null) / t_null * 100.0;
  std::printf(
      "no token: %8.2f GB/s\nlive token: %7.2f GB/s\noverhead: %+.2f%% "
      "(bar: < 2%%)\n",
      bytes / t_null / 1e9, bytes / t_live / 1e9, overhead);
}

/// E20c (--chaos): breaker + fault-injection smoke. A bursty injector
/// fails the primary backend in runs long enough to trip the breaker,
/// then clears long enough for probes to close it; meanwhile clients mix
/// in tight deadlines and client cancels. The counter identities and at
/// least one observed trip gate the exit code — CI runs this on every
/// push.
bool run_chaos_smoke() {
  benchutil::print_header(
      "E20c: chaos smoke — injected backend faults, cancels, deadlines",
      "faults cost latency, never bytes: requests ride the singly-rescue "
      "or degraded naive path while the breaker trips and recovers");

  serve::ServiceConfig cfg;
  cfg.num_workers = 2;
  cfg.batch.max_batch_requests = 16;
  cfg.batch.queue_capacity = 512;
  cfg.batch.deadline_shedding = true;
  cfg.watchdog.poll = std::chrono::milliseconds(1);
  cfg.breaker.failure_threshold = 3;
  cfg.breaker.success_threshold = 2;
  cfg.breaker.cooldown = std::chrono::milliseconds(2);
  std::atomic<std::uint64_t> dispatches{0};
  cfg.fault_injector = [&](serve::RequestKind, const serve::CodecKey&,
                           std::size_t) {
    // 20-batch failure bursts separated by 40 healthy batches.
    return dispatches.fetch_add(1, std::memory_order_relaxed) % 60 < 20;
  };
  serve::EcService service(cfg);

  const std::size_t clients = 4;
  const std::size_t per_client = g_smoke ? 60 : 200;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto data = benchutil::random_data(kK * kUnit, 0xE20C + 97 * c);
      tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
      tensor::AlignedBuffer<std::uint8_t> stripe((kK + kR) * kUnit);
      std::memcpy(stripe.data(), data.data(), data.size());
      // Disk-failure-shaped decode mix: a handful of loss patterns
      // repeated by every client, so the shared plan cache gets hit
      // after the first build of each.
      const std::vector<std::size_t> patterns[] = {
          {0}, {3, 11}, {kK}, {1, 7}};
      for (std::size_t i = 0; i < per_client; ++i) {
        const auto timeout = i % 5 == 4
                                 ? std::chrono::microseconds(50)
                                 : std::chrono::nanoseconds{0};
        serve::EcFuture f =
            i % 3 == 2
                ? service.submit_decode(kKey, stripe.span(),
                                        patterns[i % std::size(patterns)],
                                        kUnit,
                                        std::chrono::nanoseconds(timeout))
                : service.submit_encode(kKey, data.span(), parity.span(),
                                        kUnit,
                                        std::chrono::nanoseconds(timeout));
        if (i % 7 == 6) f.cancel();
        f.wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  service.shutdown();

  const serve::ServeStatsSnapshot s = service.stats();
  const bool submit_identity =
      s.submitted == s.accepted + s.rejected_overload + s.rejected_shed +
                         s.rejected_shutdown;
  const bool outcome_identity =
      s.accepted == s.completed_ok + s.expired + s.failed + s.cancelled +
                        s.shutdown_drained;
  const bool tripped = s.breaker_trips >= 1;
  std::printf(
      "submitted %llu: ok %llu, shed %llu, expired %llu, cancelled %llu, "
      "failed %llu\n"
      "batches %llu (degraded %llu), breaker trips %llu / recoveries %llu "
      "/ probes %llu, watchdog aborts %llu\n"
      "identity submitted == accepted + rejections: %s\n"
      "identity accepted == terminal outcomes: %s\n"
      "breaker observed tripping: %s\n",
      static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed_ok),
      static_cast<unsigned long long>(s.rejected_shed),
      static_cast<unsigned long long>(s.expired),
      static_cast<unsigned long long>(s.cancelled),
      static_cast<unsigned long long>(s.failed),
      static_cast<unsigned long long>(s.batches),
      static_cast<unsigned long long>(s.degraded_batches),
      static_cast<unsigned long long>(s.breaker_trips),
      static_cast<unsigned long long>(s.breaker_recoveries),
      static_cast<unsigned long long>(s.breaker_probes),
      static_cast<unsigned long long>(s.watchdog_aborts),
      submit_identity ? "ok" : "VIOLATED",
      outcome_identity ? "ok" : "VIOLATED", tripped ? "yes" : "NO");
  const std::uint64_t plan_lookups = s.plan_cache_hits + s.plan_cache_misses;
  std::printf(
      "plan cache: %llu hits / %llu misses (hit rate %.1f%%)\n",
      static_cast<unsigned long long>(s.plan_cache_hits),
      static_cast<unsigned long long>(s.plan_cache_misses),
      plan_lookups == 0 ? 0.0
                        : 100.0 * static_cast<double>(s.plan_cache_hits) /
                              static_cast<double>(plan_lookups));
  if (s.failed != 0)
    std::printf("(failed must be 0 — injected faults may only cost "
                "latency)\n");
  return submit_identity && outcome_identity && tripped && s.failed == 0;
}

void bm_submit_wait(benchmark::State& state) {
  serve::ServiceConfig cfg;
  cfg.batching = state.range(0) != 0;
  serve::EcService service(cfg);
  const auto data = benchutil::random_data(kK * kUnit, 0xE19D);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  for (auto _ : state) {
    serve::EcFuture f =
        service.submit_encode(kKey, data.span(), parity.span(), kUnit);
    f.wait();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke/--chaos before google-benchmark sees (and rejects) them.
  bool chaos = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else if (std::strcmp(argv[i], "--chaos") == 0)
      chaos = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (!g_smoke) {
    benchmark::RegisterBenchmark("bm_submit_wait", bm_submit_wait)
        ->Arg(1)
        ->Arg(0)
        ->ArgName("batching")
        ->UseRealTime();
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();

  // Throwaway run: spin up the shared pool, fault in pages, ramp the
  // CPU governor — so the first table cell isn't charged for it.
  run_closed_loop(2, g_smoke ? 10 : 50, true, 32);

  print_load_sweep();
  print_batch_cap_sweep();
  print_admission_control();
  print_goodput_overload();
  print_cancel_overhead();
  bool ok = true;
  if (chaos) ok = run_chaos_smoke();
  if (std::thread::hardware_concurrency() <= 1)
    std::printf(
        "\n(single hardware thread exposed: client threads and the service "
        "worker time-share one core, so the batching win is dispatch-"
        "amortization only; run on a multicore host for the full effect)\n");
  return ok ? 0 : 1;
}
