// E5 — §6.1 learning-based autotuning: the paper tunes each kernel for
// 20 000 trials with TVM's Autoscheduler. This bench evaluates what the
// tuning budget buys and compares search policies (random, evolutionary,
// model-guided — the Ansor-style learned search), reproducing the
// "TVM-EC automatically discovers complex optimizations" claim as a
// measurable tuning curve.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kTrials = 96;

const gf::Matrix& parity_matrix() {
  static const ec::ReedSolomon rs(ec::CodeParams{10, 4, 8});
  static const gf::Matrix parity = rs.parity_matrix();
  return parity;
}

tune::TuneResult run_policy(tune::Policy policy) {
  core::GemmCoder coder(parity_matrix());
  tune::TuneOptions opt;
  opt.policy = policy;
  opt.trials = kTrials;
  opt.seed = 99;
  return coder.tune(kUnit, opt,
                    static_cast<int>(std::thread::hardware_concurrency()));
}

/// google-benchmark entries measure the end state: default schedule vs
/// the schedule each policy found.
void bm_schedule(benchmark::State& state, tensor::Schedule schedule) {
  core::GemmCoder coder(parity_matrix(), schedule);
  const auto data = benchutil::random_data(10 * kUnit, 5);
  tensor::AlignedBuffer<std::uint8_t> parity(4 * kUnit);
  for (auto _ : state) coder.apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(10 * kUnit));
}

void print_paper_table() {
  benchutil::print_header(
      "E5 (Section 6.1): learning-based autotuning evaluation",
      "autoscheduler tuning (20000 trials in the paper) finds the best "
      "configuration; learned search needs fewer trials than random");

  std::printf("tuning curves, best GB/s after N trials (k=10 r=4 w=8, "
              "128 KB units):\n");
  std::printf("%-8s %12s %14s %14s\n", "trials", "random", "evolutionary",
              "model-guided");
  const tune::TuneResult random = run_policy(tune::Policy::Random);
  const tune::TuneResult evo = run_policy(tune::Policy::Evolutionary);
  const tune::TuneResult model = run_policy(tune::Policy::ModelGuided);
  for (std::size_t n = 8; n <= kTrials; n *= 2)
    std::printf("%-8zu %12.2f %14.2f %14.2f\n", n,
                random.best_after(n) / 1e9, evo.best_after(n) / 1e9,
                model.best_after(n) / 1e9);

  std::printf("\nbest schedules found:\n");
  std::printf("  random       : %s\n", random.best_schedule.to_string().c_str());
  std::printf("  evolutionary : %s\n", evo.best_schedule.to_string().c_str());
  std::printf("  model-guided : %s\n", model.best_schedule.to_string().c_str());

  core::GemmCoder default_coder(parity_matrix());
  const auto data = benchutil::random_data(10 * kUnit, 6);
  tensor::AlignedBuffer<std::uint8_t> parity(4 * kUnit);
  const double default_gbps = benchutil::median_encode_gbps(
      default_coder, data.span(), parity.span(), kUnit, 15);
  std::printf("\ndefault schedule: %.2f GB/s;  tuned (model-guided): %.2f "
              "GB/s  -> %.2fx from tuning\n",
              default_gbps, model.best_throughput / 1e9,
              model.best_throughput / 1e9 / default_gbps);
}

}  // namespace

int main(int argc, char** argv) {
  const tune::TuneResult tuned = run_policy(tune::Policy::ModelGuided);
  benchmark::RegisterBenchmark("encode/default-schedule", bm_schedule,
                               tensor::default_schedule());
  benchmark::RegisterBenchmark("encode/tuned-schedule", bm_schedule,
                               tuned.best_schedule);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
