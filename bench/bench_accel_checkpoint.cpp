// E15 (paper §3, simulated) — accelerator-native checkpointing: encode
// training state on the device and ship only parity, versus shipping all
// data to the host and encoding there. The device is simulated (see
// src/accel/device.h): kernel compute is real, interconnect traffic is
// metered against a modeled PCIe-class link. Reports real encode time,
// real bytes moved, and modeled transfer time for both paths.

#include <benchmark/benchmark.h>

#include "accel/device_codec.h"
#include "bench_util.h"

namespace {

using namespace tvmec;

constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

accel::DeviceBuffer upload(accel::Device& dev, std::size_t unit) {
  const auto host = benchutil::random_data(kK * unit, 1);
  accel::DeviceBuffer data = dev.alloc(kK * unit);
  dev.copy_to_device(data, host.span());
  return data;
}

void bm_checkpoint_on_device(benchmark::State& state) {
  accel::Device dev;
  accel::DeviceCodec codec(dev, ec::CodeParams{kK, kR, 8});
  const std::size_t unit = static_cast<std::size_t>(state.range(0));
  const accel::DeviceBuffer data = upload(dev, unit);
  for (auto _ : state) {
    auto parity = codec.checkpoint_on_device(data, unit);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * unit));
}

void bm_checkpoint_via_host(benchmark::State& state) {
  accel::Device dev;
  accel::DeviceCodec codec(dev, ec::CodeParams{kK, kR, 8});
  const std::size_t unit = static_cast<std::size_t>(state.range(0));
  const accel::DeviceBuffer data = upload(dev, unit);
  for (auto _ : state) {
    auto parity = codec.checkpoint_via_host(data, unit);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * unit));
}

BENCHMARK(bm_checkpoint_on_device)->Arg(128 << 10)->Arg(1 << 20);
BENCHMARK(bm_checkpoint_via_host)->Arg(128 << 10)->Arg(1 << 20);

void print_paper_table() {
  benchutil::print_header(
      "E15 (Section 3, simulated device): accelerator-native checkpoint",
      "erasure coding on the accelerator ships r units over the link; "
      "the ship-to-host path moves k units (k/r = 2.5x more here)");

  std::printf("%-10s %14s %16s %18s %18s\n", "unit", "path",
              "link bytes", "modeled link ms", "wall encode ms");
  for (const std::size_t unit : {128u << 10, 1u << 20, 4u << 20}) {
    for (const bool on_device : {true, false}) {
      accel::Device dev;  // fresh stats per path
      accel::DeviceCodec codec(dev, ec::CodeParams{kK, kR, 8});
      const accel::DeviceBuffer data = upload(dev, unit);
      dev.reset_stats();
      double wall = 0;
      if (on_device) {
        wall = tune::measure_seconds_median(
            [&] {
              auto p = codec.checkpoint_on_device(data, unit);
              benchmark::DoNotOptimize(p.data());
            },
            9);
      } else {
        wall = tune::measure_seconds_median(
            [&] {
              auto p = codec.checkpoint_via_host(data, unit);
              benchmark::DoNotOptimize(p.data());
            },
            9);
      }
      // stats accumulated over all reps; report per checkpoint.
      const double reps = 9 + 1;  // median runs + none extra (approx)
      const double link_bytes =
          static_cast<double>(dev.stats().bytes_d2h + dev.stats().bytes_h2d) /
          reps;
      const double link_ms =
          dev.stats().modeled_transfer_seconds / reps * 1e3;
      std::printf("%-10zu %14s %16.0f %18.3f %18.3f\n", unit,
                  on_device ? "on-device" : "via-host", link_bytes, link_ms,
                  wall * 1e3);
    }
  }
  std::printf("\n(link modeled at 12 GB/s PCIe-class; kernel compute is "
              "real host execution standing in for the device)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
