// E2 — §5 contiguity claim: "performing memcpy operations to reorganize
// these distinct pointers into a contiguous buffer adds considerable time
// overhead (up to 84% in our experiments)".
//
// Measures the GEMM encode (a) on a pre-staged contiguous buffer (the §5
// recommended design), (b) through the Jerasure-shaped pointer API which
// must gather k scattered units first, and (c) through encode_scattered,
// the zero-copy path that hands the scattered unit pointers straight to
// the fragment-aware GEMM kernel — and reports how much of the measured
// gather overhead the zero-copy path recovers (E21).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/tvmec.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

struct Fixture {
  explicit Fixture(std::size_t unit)
      : unit_size(unit),
        codec(ec::CodeParams{kK, kR, 8}),
        contiguous(benchutil::random_data(kK * unit, 11)),
        parity(kR * unit) {
    // A representative tuned schedule; an untuned encode would understate
    // the relative gather cost the paper reports.
    codec.set_schedule(tensor::Schedule{8, 16, 0, 512, 1});
    // This bench measures the raw zero-copy mechanism at every size; the
    // default sub-16 KB routing to the accumulator would silently turn
    // the small-unit arm into the staged path it's being compared with.
    codec.set_scattered_staging_threshold(0);
    for (std::size_t i = 0; i < kK; ++i) {
      scattered.push_back(benchutil::random_data(unit, 20 + i));
      scattered_ptrs.push_back(scattered.back().data());
    }
    for (std::size_t i = 0; i < kR; ++i) {
      parity_units.emplace_back(unit);
      parity_ptrs.push_back(parity_units.back().data());
    }
  }

  std::size_t unit_size;
  core::Codec codec;
  tensor::AlignedBuffer<std::uint8_t> contiguous;
  tensor::AlignedBuffer<std::uint8_t> parity;
  std::vector<tensor::AlignedBuffer<std::uint8_t>> scattered;
  std::vector<const std::uint8_t*> scattered_ptrs;
  std::vector<tensor::AlignedBuffer<std::uint8_t>> parity_units;
  std::vector<std::uint8_t*> parity_ptrs;
};

Fixture& fixture_for(std::size_t unit) {
  static std::map<std::size_t, std::unique_ptr<Fixture>> cache;
  auto& f = cache[unit];
  if (!f) f = std::make_unique<Fixture>(unit);
  return *f;
}

void bm_contiguous(benchmark::State& state) {
  Fixture& f = fixture_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    f.codec.encode(f.contiguous.span(), f.parity.span(), f.unit_size);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * f.unit_size));
}

void bm_scattered_ptrs(benchmark::State& state) {
  Fixture& f = fixture_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    f.codec.encode_ptrs(f.scattered_ptrs, f.parity_ptrs, f.unit_size);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * f.unit_size));
}

void bm_scattered_zero_copy(benchmark::State& state) {
  Fixture& f = fixture_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    f.codec.encode_scattered(f.scattered_ptrs, f.parity_ptrs, f.unit_size);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * f.unit_size));
}

BENCHMARK(bm_contiguous)->Arg(16 << 10)->Arg(128 << 10)->Arg(1 << 20);
BENCHMARK(bm_scattered_ptrs)->Arg(16 << 10)->Arg(128 << 10)->Arg(1 << 20);
BENCHMARK(bm_scattered_zero_copy)->Arg(16 << 10)->Arg(128 << 10)->Arg(1 << 20);

void print_paper_table() {
  benchutil::print_header(
      "E2/E21 (Section 5): memcpy overhead of scattered operands",
      "gathering pointer-per-unit operands adds up to 84% time overhead; "
      "the zero-copy scattered kernel recovers most of it");

  std::printf("%-12s %16s %16s %16s %10s %10s %10s\n", "unit size",
              "contiguous GB/s", "ptr-gather GB/s", "zero-copy GB/s",
              "gather ovh", "zc ovh", "recovered");
  for (const std::size_t unit : {16u << 10, 128u << 10, 1u << 20}) {
    Fixture& f = fixture_for(unit);
    f.codec.encode(f.contiguous.span(), f.parity.span(), unit);  // warm
    const double contig_secs = tune::measure_seconds_median(
        [&] { f.codec.encode(f.contiguous.span(), f.parity.span(), unit); },
        21);
    const double ptr_secs = tune::measure_seconds_median(
        [&] { f.codec.encode_ptrs(f.scattered_ptrs, f.parity_ptrs, unit); },
        21);
    const double zc_secs = tune::measure_seconds_median(
        [&] {
          f.codec.encode_scattered(f.scattered_ptrs, f.parity_ptrs,
                                   f.unit_size);
        },
        21);
    const double bytes = static_cast<double>(kK * unit);
    const double gather_ovh = ptr_secs / contig_secs - 1.0;
    const double zc_ovh = zc_secs / contig_secs - 1.0;
    // Fraction of the measured gather tax the zero-copy path gives back.
    const double recovered =
        gather_ovh > 0.0 ? (gather_ovh - zc_ovh) / gather_ovh : 0.0;
    std::printf("%-12zu %16.2f %16.2f %16.2f %9.1f%% %9.1f%% %9.1f%%\n",
                unit, bytes / contig_secs / 1e9, bytes / ptr_secs / 1e9,
                bytes / zc_secs / 1e9, gather_ovh * 100.0, zc_ovh * 100.0,
                recovered * 100.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
