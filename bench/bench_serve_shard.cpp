// E23 — sharded multi-tenant serving: per-shard EC services with client
// affinity, bounded work stealing, and weighted-fair tenant QoS. The ML
// serving systems the paper points at shard their request queues per
// worker; this bench measures what that buys an EC front. An open-loop
// burst with a heavy-tailed (Zipf) tenant mix is driven through the
// sharded front at several shard counts against the single-shard
// baseline (E23a), then the same skewed mix runs with QoS enforcement on
// vs off to show weighted-fair isolation: the hot tenant's overflow is
// rejected at the front while cold tenants keep their admission rate
// (E23b). Per-tenant p99/p99.9 come from client-side future timings —
// the per-tenant counters carry no histograms by design.
//
// Exit code: every run's counter identities are checked — aggregate
// admission/drain, every tenant's admission/drain balance, and the
// tenant aggregate vs the front aggregate — and a violation fails the
// binary. CI runs `--smoke` on every push.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/tvmec.h"
#include "serve/shard.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 4 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const serve::CodecKey kKey{kK, kR, 8, ec::RsFamily::CauchyGood};

bool g_smoke = false;
bool g_identities_ok = true;

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  return v[static_cast<std::size_t>(idx + 0.5)];
}

/// Heavy-tailed tenant draw: P(tenant i) ~ 1 / i^s over 1..n.
class Zipf {
 public:
  Zipf(std::size_t n, double s) : cdf_(n) {
    double sum = 0;
    for (std::size_t i = 0; i < n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i + 1), s) / sum;
      cdf_[i] = acc;
    }
  }
  serve::TenantId operator()(std::mt19937_64& rng) const {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<serve::TenantId>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

/// The aggregate, per-tenant, and cross-snapshot counter identities —
/// checked after every run; any violation fails the binary.
bool check_identities(const serve::ShardedStatsSnapshot& s,
                      const char* label) {
  const serve::ServeStatsSnapshot& a = s.aggregate;
  bool ok = a.submitted == a.accepted + a.rejected_overload +
                               a.rejected_shed + a.rejected_shutdown;
  ok = ok && a.accepted == a.completed_ok + a.expired + a.failed +
                               a.cancelled + a.shutdown_drained;
  for (const serve::TenantCounters& t : s.tenants)
    ok = ok && t.admission_balanced() && t.drained_balanced();
  const serve::TenantCounters& ta = s.tenant_aggregate;
  ok = ok && ta.submitted == a.submitted && ta.accepted == a.accepted &&
       ta.completed_ok == a.completed_ok &&
       ta.rejected() == a.rejected_overload + a.rejected_shed +
                            a.rejected_shutdown &&
       ta.in_queue == 0;
  std::uint64_t shard_submitted = 0;
  for (const serve::ShardStatsSnapshot& sh : s.shards)
    shard_submitted += sh.stats.submitted;
  ok = ok && shard_submitted + s.qos_rejected == a.submitted;
  if (!ok) {
    std::printf(
        "COUNTER IDENTITY VIOLATED (%s)\n"
        "  aggregate: submitted %llu accepted %llu ovl %llu shed %llu "
        "shut %llu | ok %llu exp %llu fail %llu canc %llu drained %llu\n"
        "  tenant agg: submitted %llu accepted %llu ok %llu rejected %llu "
        "in_queue %lld\n"
        "  shard submitted sum %llu + qos_rejected %llu\n",
        label, static_cast<unsigned long long>(a.submitted),
        static_cast<unsigned long long>(a.accepted),
        static_cast<unsigned long long>(a.rejected_overload),
        static_cast<unsigned long long>(a.rejected_shed),
        static_cast<unsigned long long>(a.rejected_shutdown),
        static_cast<unsigned long long>(a.completed_ok),
        static_cast<unsigned long long>(a.expired),
        static_cast<unsigned long long>(a.failed),
        static_cast<unsigned long long>(a.cancelled),
        static_cast<unsigned long long>(a.shutdown_drained),
        static_cast<unsigned long long>(ta.submitted),
        static_cast<unsigned long long>(ta.accepted),
        static_cast<unsigned long long>(ta.completed_ok),
        static_cast<unsigned long long>(ta.rejected()),
        static_cast<long long>(ta.in_queue),
        static_cast<unsigned long long>(shard_submitted),
        static_cast<unsigned long long>(s.qos_rejected));
    for (const serve::TenantCounters& t : s.tenants)
      if (!t.admission_balanced() || !t.drained_balanced())
        std::printf("  tenant %llu unbalanced: submitted %llu accepted %llu "
                    "rejected %llu terminal %llu in_queue %lld\n",
                    static_cast<unsigned long long>(t.tenant),
                    static_cast<unsigned long long>(t.submitted),
                    static_cast<unsigned long long>(t.accepted),
                    static_cast<unsigned long long>(t.rejected()),
                    static_cast<unsigned long long>(t.terminal()),
                    static_cast<long long>(t.in_queue));
    g_identities_ok = false;
  }
  return ok;
}

struct RunResult {
  double secs = 0;
  double gbps = 0;  // completed-ok data bytes / wall time
  serve::ShardedStatsSnapshot stats;
  /// Client-side total latency (us) of completed-ok requests, per tenant.
  std::map<serve::TenantId, std::vector<double>> lat_us;
};

/// Open-loop burst: `clients` submitter threads each fire `per_client`
/// requests back to back without waiting (offered load is set by the
/// burst size, not by service completions), tenant drawn Zipf per
/// request, client id fixed per thread (shard affinity). Futures are
/// reaped after the burst; admission control — front QoS plus per-shard
/// queue capacity — decides who got in.
RunResult run_open_loop(std::size_t num_shards, std::size_t num_tenants,
                        double zipf_s, std::size_t clients,
                        std::size_t per_client, bool qos) {
  serve::ShardedServiceConfig cfg;
  cfg.num_shards = num_shards;
  cfg.workers_per_shard = 1;
  cfg.shard.batch.max_batch_requests = 16;
  cfg.shard.batch.queue_capacity = 64;
  cfg.qos_enforcement = qos;
  serve::ShardedEcService service(cfg);

  const Zipf zipf(num_tenants, zipf_s);
  std::mutex merge_mutex;
  RunResult result;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::mt19937_64 rng(0xE23 + 977 * c);
      const auto data = benchutil::random_data(kK * kUnit, 0xE23A + c);
      // One parity buffer per in-flight request: open loop, so every
      // submission of the burst may be outstanding at once.
      std::vector<tensor::AlignedBuffer<std::uint8_t>> parity;
      parity.reserve(per_client);
      std::vector<serve::EcFuture> futures;
      std::vector<serve::TenantId> tenant_of;
      futures.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        const serve::TenantId tenant = zipf(rng);
        parity.emplace_back(kR * kUnit);
        futures.push_back(service.submit_encode(
            tenant, c, kKey, data.span(), parity.back().span(), kUnit));
        tenant_of.push_back(tenant);
      }
      std::map<serve::TenantId, std::vector<double>> local;
      for (std::size_t i = 0; i < per_client; ++i) {
        const serve::EcResult& r = futures[i].wait();
        if (r.status == serve::RequestStatus::Ok)
          local[tenant_of[i]].push_back(
              static_cast<double>(r.total.count()) / 1e3);
      }
      std::lock_guard lock(merge_mutex);
      for (auto& [tenant, lats] : local) {
        auto& dst = result.lat_us[tenant];
        dst.insert(dst.end(), lats.begin(), lats.end());
      }
    });
  }
  for (auto& t : threads) t.join();
  result.secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  service.shutdown();

  result.stats = service.stats();
  result.gbps = static_cast<double>(result.stats.aggregate.completed_ok) *
                static_cast<double>(kK * kUnit) / result.secs / 1e9;
  check_identities(result.stats, qos ? "open-loop, qos on"
                                     : "open-loop, qos off");
  return result;
}

/// E23a: the same open-loop Zipf burst at 1/2/4 shards. Throughput and
/// tail latency per shard count, plus the steal counters (skewed client
/// hashing leaves some shards hot; thieves drain them).
void print_shard_sweep() {
  benchutil::print_header(
      "E23a: open-loop Zipf burst vs shard count "
      "(k=10 r=4 w=8, 4 KiB units, 1 worker/shard)",
      "per-shard queues remove the global queue lock from the submit "
      "path; bounded stealing keeps skewed shards from queueing while "
      "neighbors idle");

  const std::size_t clients = 4;
  const std::size_t per_client = g_smoke ? 64 : 512;
  const std::size_t tenants = 4;

  std::printf("%-8s | %9s %8s %8s %9s | %8s %8s | %6s %7s\n", "shards",
              "GB/s", "p50us", "p99us", "p99.9us", "accepted", "rejected",
              "steals", "stolen");
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    const RunResult r = run_open_loop(shards, tenants, /*zipf_s=*/1.2,
                                      clients, per_client, /*qos=*/true);
    std::vector<double> all;
    for (const auto& [tenant, lats] : r.lat_us)
      all.insert(all.end(), lats.begin(), lats.end());
    std::vector<double> a1 = all, a2 = all, a3 = all;
    std::printf("%-8zu | %9.2f %8.0f %8.0f %9.0f | %8llu %8llu | %6llu "
                "%7llu\n",
                shards, r.gbps, percentile(a1, 50), percentile(a2, 99),
                percentile(a3, 99.9),
                static_cast<unsigned long long>(r.stats.aggregate.accepted),
                static_cast<unsigned long long>(
                    r.stats.aggregate.rejected_overload),
                static_cast<unsigned long long>(r.stats.steal_batches),
                static_cast<unsigned long long>(r.stats.steal_requests));
  }
  if (std::thread::hardware_concurrency() <= 1)
    std::printf(
        "(single hardware thread exposed: all shard workers time-share one "
        "core, so shard-count scaling here shows queue-contention relief "
        "only, not parallel speedup; run on a multicore host for the full "
        "effect)\n");
}

/// E23b: weighted-fair isolation under the skewed mix — QoS enforcement
/// on vs off, per-tenant admission and tails. Jain's fairness index over
/// per-tenant acceptance ratios summarizes each arm (1.0 = perfectly
/// equal admission odds regardless of offered load).
void print_qos_fairness() {
  benchutil::print_header(
      "E23b: tenant QoS under a heavy-tailed mix, enforcement on vs off",
      "weighted fair shares reject the hot tenant's overflow at the "
      "front, so a tenant's admission odds stop depending on how hard "
      "its neighbors push");

  const std::size_t clients = 4;
  const std::size_t per_client = g_smoke ? 64 : 512;
  const std::size_t tenants = 4;

  for (const bool qos : {false, true}) {
    const RunResult r = run_open_loop(/*num_shards=*/2, tenants,
                                      /*zipf_s=*/1.2, clients, per_client,
                                      qos);
    std::printf("qos %s:\n", qos ? "on " : "off");
    std::printf("  %-8s %9s %9s %9s %8s %8s %9s\n", "tenant", "submitted",
                "accepted", "ok", "acc%", "p99us", "p99.9us");
    double sum = 0, sum_sq = 0;
    std::size_t arms = 0;
    for (const serve::TenantCounters& t : r.stats.tenants) {
      auto it = r.lat_us.find(t.tenant);
      std::vector<double> lats =
          it == r.lat_us.end() ? std::vector<double>{} : it->second;
      std::vector<double> l2 = lats;
      const double acc_ratio =
          t.submitted == 0 ? 0.0
                           : static_cast<double>(t.accepted) /
                                 static_cast<double>(t.submitted);
      sum += acc_ratio;
      sum_sq += acc_ratio * acc_ratio;
      ++arms;
      std::printf("  %-8llu %9llu %9llu %9llu %7.0f%% %8.0f %9.0f\n",
                  static_cast<unsigned long long>(t.tenant),
                  static_cast<unsigned long long>(t.submitted),
                  static_cast<unsigned long long>(t.accepted),
                  static_cast<unsigned long long>(t.completed_ok),
                  100.0 * acc_ratio, percentile(lats, 99),
                  percentile(l2, 99.9));
    }
    const double jain = sum_sq == 0
                            ? 0.0
                            : sum * sum / (static_cast<double>(arms) * sum_sq);
    std::printf("  Jain fairness over acceptance ratios: %.3f\n", jain);
  }
  std::printf(
      "(acceptance odds under enforcement are set by each tenant's share, "
      "not by its offered load; the hot tenant's overflow is the rejected "
      "column)\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;

  // Throwaway run: spin up pools, fault in pages, warm the governor.
  run_open_loop(2, 2, 1.2, 2, g_smoke ? 16 : 64, true);

  print_shard_sweep();
  print_qos_fairness();

  std::printf("\ncounter identities across all runs: %s\n",
              g_identities_ok ? "ok" : "VIOLATED");
  return g_identities_ok ? 0 : 1;
}
