// E8 — §7.2 / §8 future work: CPU utilization. "One potential limitation
// of erasure codes implemented via ML libraries is that they may lead to
// higher CPU utilization" (because GEMM schedules parallelize across
// cores). Measures CPU-seconds consumed per GB encoded (via rusage) for
// every backend, including single-thread and multi-thread GEMM schedules.

#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <thread>

#include "bench_util.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

double process_cpu_seconds() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto to_secs = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) / 1e6;
  };
  return to_secs(usage.ru_utime) + to_secs(usage.ru_stime);
}

struct UtilResult {
  double wall_gbps = 0;
  double cpu_seconds_per_gb = 0;
};

UtilResult measure(const ec::MatrixCoder& coder,
                   std::span<const std::uint8_t> data,
                   std::span<std::uint8_t> parity) {
  coder.apply(data, parity, kUnit);  // warm
  constexpr int kReps = 40;
  const double cpu0 = process_cpu_seconds();
  const auto wall0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) coder.apply(data, parity, kUnit);
  const auto wall1 = std::chrono::steady_clock::now();
  const double cpu1 = process_cpu_seconds();

  const double gb = static_cast<double>(kK * kUnit) * kReps / 1e9;
  UtilResult r;
  r.wall_gbps = gb / std::chrono::duration<double>(wall1 - wall0).count();
  r.cpu_seconds_per_gb = (cpu1 - cpu0) / gb;
  return r;
}

void print_paper_table() {
  benchutil::print_header(
      "E8 (Section 7.2): CPU utilization comparison",
      "ML-library erasure coding may consume more CPU (parallel "
      "schedules) for its throughput");

  const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  const auto parity_m = rs.parity_matrix();
  const auto data = benchutil::random_data(kK * kUnit, 9);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);

  std::printf("%-18s %14s %20s\n", "backend", "wall GB/s", "CPU-sec per GB");

  for (const core::Backend b :
       {core::Backend::JerasureSmart, core::Backend::Uezato,
        core::Backend::Isal}) {
    const auto coder = core::make_coder(b, parity_m);
    const UtilResult r = measure(*coder, data.span(), parity.span());
    std::printf("%-18s %14.2f %20.4f\n", core::to_string(b), r.wall_gbps,
                r.cpu_seconds_per_gb);
  }

  // GEMM backend: serial schedule vs all-cores schedule.
  {
    core::GemmCoder coder(parity_m);
    benchutil::tune_gemm(coder, kUnit, 32, /*max_threads=*/1);
    const UtilResult r = measure(coder, data.span(), parity.span());
    std::printf("%-18s %14.2f %20.4f\n", "tvm-ec (1 thread)", r.wall_gbps,
                r.cpu_seconds_per_gb);
  }
  {
    core::GemmCoder coder(parity_m);
    benchutil::tune_gemm(coder, kUnit, 32,
                         static_cast<int>(std::thread::hardware_concurrency()));
    const UtilResult r = measure(coder, data.span(), parity.span());
    std::printf("%-18s %14.2f %20.4f   (schedule: %s)\n", "tvm-ec (tuned)",
                r.wall_gbps, r.cpu_seconds_per_gb,
                coder.schedule().to_string().c_str());
  }
  std::printf("\n(hardware threads available: %u)\n",
              std::thread::hardware_concurrency());
}

void bm_placeholder(benchmark::State& state) {
  // The substantive measurement is rusage-based (above); this entry keeps
  // the binary a well-formed google-benchmark target.
  const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  core::GemmCoder coder(rs.parity_matrix());
  const auto data = benchutil::random_data(kK * kUnit, 10);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * kUnit);
  for (auto _ : state) coder.apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
}
BENCHMARK(bm_placeholder)->Name("encode/tvm-ec-default");

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
