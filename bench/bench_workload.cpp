// E14 (extension; paper §8 "measure the performance on real storage
// workloads") — a synthetic-but-shaped object workload driven through
// the erasure-coded stripe store: lognormal object sizes (the classic
// blob-store distribution), a read-heavy op mix, and a node failure
// mid-run. Reports end-to-end store throughput, where encoding is one
// cost among memcpy, placement, and reconstruction.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "storage/stripe_store.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 64 * 1024;

struct Workload {
  std::vector<std::vector<std::uint8_t>> objects;
  std::size_t total_bytes = 0;
};

/// Lognormal object sizes (median ~256 KB, heavy tail capped at 8 MB).
Workload make_workload(std::size_t count, std::uint64_t seed) {
  Workload w;
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> size_dist(std::log(256.0 * 1024), 1.0);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t size = std::min<std::size_t>(
        8u << 20, std::max<std::size_t>(1024, static_cast<std::size_t>(
                                                  size_dist(rng))));
    std::vector<std::uint8_t> obj(size);
    for (auto& b : obj) b = static_cast<std::uint8_t>(rng());
    w.total_bytes += size;
    w.objects.push_back(std::move(obj));
  }
  return w;
}

void bm_put_workload(benchmark::State& state) {
  const Workload w = make_workload(24, 1);
  for (auto _ : state) {
    storage::StripeStore store(ec::CodeParams{10, 4, 8}, kUnit, 14);
    for (std::size_t i = 0; i < w.objects.size(); ++i)
      store.put("obj" + std::to_string(i), w.objects[i]);
    benchmark::DoNotOptimize(store.stats().stripes_written);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_bytes));
}
BENCHMARK(bm_put_workload)->Unit(benchmark::kMillisecond);

void bm_get_workload(benchmark::State& state) {
  const Workload w = make_workload(24, 2);
  storage::StripeStore store(ec::CodeParams{10, 4, 8}, kUnit, 14);
  for (std::size_t i = 0; i < w.objects.size(); ++i)
    store.put("obj" + std::to_string(i), w.objects[i]);
  const bool degraded = state.range(0) != 0;
  if (degraded) store.fail_node(3);
  std::mt19937_64 rng(3);
  for (auto _ : state) {
    const std::size_t i = rng() % w.objects.size();
    auto got = store.get("obj" + std::to_string(i));
    benchmark::DoNotOptimize(got);
  }
  state.SetLabel(degraded ? "degraded" : "healthy");
}
BENCHMARK(bm_get_workload)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void print_paper_table() {
  benchutil::print_header(
      "E14 (extension): object-store workload, end to end",
      "encoding cost in situ: put/get/degraded-get/repair throughput over "
      "a lognormal object mix");

  const Workload w = make_workload(32, 4);
  storage::StripeStore store(ec::CodeParams{10, 4, 8}, kUnit, 14);

  const double put_secs = tune::measure_seconds_median(
      [&] {
        for (std::size_t i = 0; i < w.objects.size(); ++i)
          store.put("obj" + std::to_string(i), w.objects[i]);
      },
      3);
  std::printf("put    : %7.2f GB/s  (%zu objects, %.1f MB total, %zu "
              "stripes)\n",
              w.total_bytes / put_secs / 1e9, w.objects.size(),
              w.total_bytes / 1e6, store.stats().stripes_written);

  const auto read_all = [&] {
    for (std::size_t i = 0; i < w.objects.size(); ++i) {
      auto got = store.get("obj" + std::to_string(i));
      benchmark::DoNotOptimize(got);
    }
  };
  const double get_secs = tune::measure_seconds_median(read_all, 3);
  std::printf("get    : %7.2f GB/s  (healthy)\n",
              w.total_bytes / get_secs / 1e9);

  store.fail_node(2);
  const double degraded_secs = tune::measure_seconds_median(read_all, 3);
  std::printf("get    : %7.2f GB/s  (degraded, 1 node down, %zu "
              "reconstructing reads)\n",
              w.total_bytes / degraded_secs / 1e9,
              store.stats().degraded_reads);

  store.revive_node(2);
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t rebuilt = store.repair();
  const double repair_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("repair : %7.2f GB/s  (%zu units rebuilt)\n",
              rebuilt * kUnit / repair_secs / 1e9, rebuilt);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
