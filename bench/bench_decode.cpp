// E6 — §8 future work: decoding throughput. "The decoding process is
// very similar to that of encoding" (§2): a decode is the recovery
// matrix applied as a GEMM. This bench measures decode throughput across
// erasure counts and data/parity mixes for all backends.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "ec/decoder.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const ec::ReedSolomon& code() {
  static const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  return rs;
}

/// Erasure patterns: 1..4 failures, data-heavy and parity-heavy mixes.
const std::map<std::string, std::vector<std::size_t>>& patterns() {
  static const std::map<std::string, std::vector<std::size_t>> p = {
      {"1data", {0}},
      {"2data", {0, 5}},
      {"3data", {0, 5, 9}},
      {"4data", {0, 3, 6, 9}},
      {"2data2parity", {0, 5, 10, 13}},
      {"4parity", {10, 11, 12, 13}},
  };
  return p;
}

void bm_decode(benchmark::State& state, const std::string& backend_name,
               core::Backend backend, const std::string& pattern_name) {
  const auto& erased = patterns().at(pattern_name);
  const auto plan = ec::make_decode_plan(code().generator(), erased);
  const auto coder = benchutil::make_measured_coder(backend, plan->recovery);
  const auto survivors =
      benchutil::random_data(plan->survivors.size() * kUnit, 7);
  tensor::AlignedBuffer<std::uint8_t> out(erased.size() * kUnit);
  for (auto _ : state) coder->apply(survivors.span(), out.span(), kUnit);
  // Decode throughput convention: recovered bytes per second would be
  // tiny for single failures; like the paper's encode numbers we report
  // consumed survivor bytes.
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(plan->survivors.size() * kUnit));
  (void)backend_name;
}

void print_paper_table() {
  benchutil::print_header(
      "E6 (Section 8 future work): decoding throughput, GB/s",
      "decode == encode with the recovery matrix; throughput falls as "
      "more units are reconstructed");

  const std::vector<std::pair<std::string, core::Backend>> backends = {
      {"jerasure", core::Backend::JerasureSmart},
      {"uezato", core::Backend::Uezato},
      {"isal", core::Backend::Isal},
      {"tvm-ec", core::Backend::Gemm},
  };
  std::printf("%-14s", "pattern");
  for (const auto& [name, b] : backends) std::printf("%12s", name.c_str());
  std::printf("\n");

  for (const auto& [pattern_name, erased] : patterns()) {
    const auto plan = ec::make_decode_plan(code().generator(), erased);
    const auto survivors =
        benchutil::random_data(plan->survivors.size() * kUnit, 8);
    std::printf("%-14s", pattern_name.c_str());
    for (const auto& [name, b] : backends) {
      const auto coder = benchutil::make_measured_coder(b, plan->recovery);
      tensor::AlignedBuffer<std::uint8_t> out(erased.size() * kUnit);
      const double gbps = benchutil::median_encode_gbps(
          *coder, survivors.span(), out.span(), kUnit, 15);
      std::printf("%12.2f", gbps);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const auto& [pattern_name, erased] : patterns()) {
    for (const auto& [name, b] :
         std::vector<std::pair<std::string, core::Backend>>{
             {"uezato", core::Backend::Uezato},
             {"isal", core::Backend::Isal},
             {"tvm-ec", core::Backend::Gemm}}) {
      const std::string bench_name = "decode/" + name + "/" + pattern_name;
      benchmark::RegisterBenchmark(bench_name.c_str(), bm_decode, name, b,
                                   pattern_name);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
