#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "core/backends.h"
#include "core/gemm_coder.h"
#include "ec/encoder.h"
#include "serve/stats.h"
#include "tensor/buffer.h"
#include "tune/tuner.h"

/// Shared measurement helpers for the per-figure benchmark binaries.
///
/// Each binary combines google-benchmark output (for machine-readable
/// per-op timing) with a printed paper-style table reproducing the rows
/// or series of the corresponding figure in the paper; EXPERIMENTS.md
/// records the tables next to the paper's claims.
namespace tvmec::benchutil {

inline tensor::AlignedBuffer<std::uint8_t> random_data(std::size_t size,
                                                       std::uint64_t seed) {
  tensor::AlignedBuffer<std::uint8_t> buf(size);
  std::mt19937_64 rng(seed);
  for (std::size_t i = 0; i < size; ++i)
    buf[i] = static_cast<std::uint8_t>(rng());
  return buf;
}

/// Median encode throughput of `coder` in GB/s over `reps` runs
/// (throughput convention as in the paper: data bytes consumed per
/// second, i.e. k * unit_size per apply).
inline double median_encode_gbps(const ec::MatrixCoder& coder,
                                 std::span<const std::uint8_t> in,
                                 std::span<std::uint8_t> out,
                                 std::size_t unit_size, std::size_t reps) {
  coder.apply(in, out, unit_size);  // warm-up
  const double secs = tune::measure_seconds_median(
      [&] { coder.apply(in, out, unit_size); }, reps);
  return static_cast<double>(in.size()) / secs / 1e9;
}

/// Drift-resistant comparison: measures several coders round-robin over
/// `rounds` passes (so slow frequency/neighbor drift affects every coder
/// equally) and returns the per-coder median GB/s. Each sample times
/// `inner` back-to-back applies.
inline std::vector<double> interleaved_median_gbps(
    const std::vector<const ec::MatrixCoder*>& coders,
    std::span<const std::uint8_t> in, std::size_t unit_size,
    std::size_t rounds = 9, std::size_t inner = 3) {
  std::vector<std::vector<double>> samples(coders.size());
  std::vector<tensor::AlignedBuffer<std::uint8_t>> outs;
  outs.reserve(coders.size());
  for (const auto* c : coders) {
    outs.emplace_back(c->out_units() * unit_size);
    c->apply(in, outs.back().span(), unit_size);  // warm-up
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < coders.size(); ++i) {
      const double secs = tune::measure_seconds_median(
          [&] { coders[i]->apply(in, outs[i].span(), unit_size); }, inner);
      samples[i].push_back(static_cast<double>(in.size()) / secs / 1e9);
    }
  }
  std::vector<double> medians(coders.size());
  for (std::size_t i = 0; i < coders.size(); ++i)
    medians[i] = serve::sample_median(samples[i]);
  return medians;
}

/// Autotunes a GemmCoder for the given unit size and returns it ready to
/// measure (the paper's §6.1 setup with a configurable budget). Like
/// TVM's autoscheduler, the quick per-trial timings are followed by a
/// careful re-measurement of the top candidates before the final pick —
/// on a noisy machine the fastest-looking trial is often just a lucky
/// sample.
inline void tune_gemm(core::GemmCoder& coder, std::size_t unit_size,
                      std::size_t trials, int max_threads) {
  tune::TuneOptions opt;
  opt.policy = tune::Policy::ModelGuided;
  opt.trials = trials;
  opt.seed = 0xEC;
  tune::TuneResult result = coder.tune(unit_size, opt, max_threads);

  // Re-measure the top 6 distinct candidates with longer, interleaved
  // sampling and install the true winner.
  auto history = result.history;
  std::sort(history.begin(), history.end(),
            [](const auto& a, const auto& b) {
              return a.throughput > b.throughput;
            });
  std::vector<tensor::Schedule> finalists;
  for (const auto& rec : history) {
    if (std::find(finalists.begin(), finalists.end(), rec.schedule) ==
        finalists.end())
      finalists.push_back(rec.schedule);
    if (finalists.size() == 6) break;
  }
  const auto data = random_data(coder.in_units() * unit_size, 0xF1);
  tensor::AlignedBuffer<std::uint8_t> parity(coder.out_units() * unit_size);
  std::vector<std::vector<double>> samples(finalists.size());
  for (std::size_t round = 0; round < 7; ++round) {
    for (std::size_t i = 0; i < finalists.size(); ++i) {
      coder.set_schedule(finalists[i]);
      coder.apply(data.span(), parity.span(), unit_size);
      const double secs = tune::measure_seconds_median(
          [&] { coder.apply(data.span(), parity.span(), unit_size); }, 3);
      samples[i].push_back(secs);
    }
  }
  std::size_t best = 0;
  double best_secs = 1e300;
  for (std::size_t i = 0; i < finalists.size(); ++i) {
    const double median = serve::sample_median(samples[i]);
    if (median < best_secs) {
      best_secs = median;
      best = i;
    }
  }
  coder.set_schedule(finalists[best]);
}

/// A representative tuned schedule for the GEMM backend (what the
/// autotuner converges to on this class of machine); used by benches
/// that compare backends without running a fresh tuning session.
inline tensor::Schedule representative_gemm_schedule() {
  tensor::Schedule s;
  s.tile_m = 8;
  s.tile_n = 16;
  s.block_k = 0;
  s.block_n = 512;
  s.num_threads = 1;
  s.par_axis = tensor::ParAxis::N;  // the long axis for EC shapes
  s.par_grain = 0;
  return s;
}

/// make_coder, but the Gemm backend gets the representative schedule.
inline std::unique_ptr<ec::MatrixCoder> make_measured_coder(
    core::Backend b, const gf::Matrix& coeffs) {
  if (b == core::Backend::Gemm)
    return core::make_gemm_coder(coeffs, representative_gemm_schedule());
  return core::make_coder(b, coeffs);
}

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace tvmec::benchutil
