// E17 (extension; robustness follow-up to E14) — background scrubbing
// cost: full CRC-32C + parity-consistency verification of an
// erasure-coded store, with in-place repair of planted corruption
// through the GEMM decode path. Reports verified GB/s and repairs/s at
// several latent-corruption rates; the 0% row is the steady-state
// "scrub tax" a deployment pays, the others price the recovery work.

#include <benchmark/benchmark.h>

#include <random>

#include "bench_util.h"
#include "storage/scrubber.h"
#include "storage/stripe_store.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 64 * 1024;
constexpr std::size_t kObjects = 16;
constexpr std::size_t kStripesPerObject = 4;
const ec::CodeParams kParams{10, 4, 8};

storage::StripeStore make_filled_store() {
  storage::StripeStore store(kParams, kUnit, 14);
  const std::size_t object_bytes = kStripesPerObject * kParams.k * kUnit;
  for (std::size_t i = 0; i < kObjects; ++i) {
    const auto data = benchutil::random_data(object_bytes, i);
    store.put("obj" + std::to_string(i),
              std::span<const std::uint8_t>(data.data(), data.size()));
  }
  return store;
}

/// Flips one byte in ~`per_mille`/1000 of all units, never more than r
/// per stripe (so every stripe stays repairable). Returns units planted.
std::size_t plant_corruption(storage::StripeStore& store,
                             std::size_t per_mille, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::size_t planted = 0;
  for (std::size_t i = 0; i < kObjects; ++i) {
    const std::string name = "obj" + std::to_string(i);
    for (std::size_t s = 0; s < kStripesPerObject; ++s) {
      std::size_t in_stripe = 0;
      for (std::size_t u = 0; u < kParams.n() && in_stripe < kParams.r; ++u) {
        if (rng() % 1000 >= per_mille) continue;
        if (store.corrupt_unit(name, s, u)) {
          ++planted;
          ++in_stripe;
        }
      }
    }
  }
  return planted;
}

void bm_scrub_pass(benchmark::State& state) {
  const auto per_mille = static_cast<std::size_t>(state.range(0));
  storage::StripeStore store = make_filled_store();
  std::uint64_t seed = 42;
  std::uint64_t verified = 0;
  for (auto _ : state) {
    state.PauseTiming();
    plant_corruption(store, per_mille, seed++);
    storage::Scrubber scrubber(store);
    state.ResumeTiming();
    const storage::ScrubStats pass = scrubber.run();
    verified += pass.bytes_verified;
    benchmark::DoNotOptimize(pass.units_repaired);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(verified));
  state.SetLabel(std::to_string(per_mille) + " per-mille corrupt");
}
BENCHMARK(bm_scrub_pass)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

void bm_scrub_step(benchmark::State& state) {
  // Incremental operation: one small cursor step per iteration, the way
  // a deployment interleaves scrubbing with foreground traffic.
  storage::StripeStore store = make_filled_store();
  storage::Scrubber scrubber(store);
  std::uint64_t verified = 0;
  for (auto _ : state) {
    const storage::ScrubStats inc = scrubber.step(2);
    verified += inc.bytes_verified;
    benchmark::DoNotOptimize(inc.stripes_scanned);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(verified));
}
BENCHMARK(bm_scrub_step)->Unit(benchmark::kMicrosecond);

void print_paper_table() {
  benchutil::print_header(
      "E17 (extension): background scrub throughput vs corruption rate",
      "self-healing in situ: CRC + parity verification runs at memory "
      "speed; repairs ride the GEMM decode path");

  std::printf("%-12s %10s %12s %12s %10s\n", "corruption", "planted",
              "verified", "scrub GB/s", "repairs/s");
  std::uint64_t seed = 7;
  for (const std::size_t per_mille : {0ul, 5ul, 20ul, 50ul}) {
    storage::StripeStore store = make_filled_store();
    const std::size_t planted = plant_corruption(store, per_mille, seed++);
    storage::Scrubber scrubber(store);

    const auto t0 = std::chrono::steady_clock::now();
    const storage::ScrubStats pass = scrubber.run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::printf("%4.1f%%        %10zu %10.1f MB %12.2f %10.0f\n",
                per_mille / 10.0, planted, pass.bytes_verified / 1e6,
                pass.bytes_verified / secs / 1e9,
                pass.units_repaired / secs);
    if (pass.units_repaired != planted)
      std::printf("  !! repaired %zu of %zu planted\n", pass.units_repaired,
                  planted);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
