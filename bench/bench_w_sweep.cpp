// E7 — §8 future work: "measuring the throughput and latency of the
// prototype for different r and w parameters". Sweeps the field word
// size w in {4, 8, 16} (and r in {2, 4}) at k = 10 with 128 KB units.
// Bitmatrix cost grows with w (the bitmatrix is rw x kw), which is why
// production bitmatrix codes stay at w = 8.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "ec/bitmatrix_code.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kK = 10;

struct Case {
  unsigned w;
  std::size_t r;
};

const std::vector<Case> kCases = {{4, 2}, {4, 4}, {8, 2},
                                  {8, 4}, {16, 2}, {16, 4}};

const gf::Matrix& parity_for(const Case& c) {
  static std::map<std::pair<unsigned, std::size_t>,
                  std::unique_ptr<gf::Matrix>>
      cache;
  auto& m = cache[{c.w, c.r}];
  if (!m) {
    const ec::ReedSolomon rs(ec::CodeParams{kK, c.r, c.w});
    m = std::make_unique<gf::Matrix>(rs.parity_matrix());
  }
  return *m;
}

void bm_w(benchmark::State& state, core::Backend backend, Case c) {
  const auto coder = benchutil::make_measured_coder(backend, parity_for(c));
  const auto data = benchutil::random_data(kK * kUnit, c.w);
  tensor::AlignedBuffer<std::uint8_t> parity(c.r * kUnit);
  for (auto _ : state) coder->apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * kUnit));
}

void print_paper_table() {
  benchutil::print_header(
      "E7 (Section 8 future work): throughput across field sizes w",
      "bitmatrix density (and thus XOR work) grows with w; w=8 is the "
      "sweet spot used in the paper's evaluation");

  std::printf("%-10s %6s %14s %12s %12s %14s\n", "(w,r)", "ones",
              "ones/output", "uezato GB/s", "tvm-ec GB/s", "isal GB/s");
  for (const Case& c : kCases) {
    const ec::BitmatrixCode bits(parity_for(c));
    const auto data = benchutil::random_data(kK * kUnit, 100 + c.w);
    tensor::AlignedBuffer<std::uint8_t> parity(c.r * kUnit);

    const auto uezato = benchutil::make_measured_coder(core::Backend::Uezato, parity_for(c));
    const auto gemm = benchutil::make_measured_coder(core::Backend::Gemm, parity_for(c));
    const double uezato_gbps = benchutil::median_encode_gbps(
        *uezato, data.span(), parity.span(), kUnit, 11);
    const double gemm_gbps = benchutil::median_encode_gbps(
        *gemm, data.span(), parity.span(), kUnit, 11);
    double isal_gbps = 0;
    if (c.w == 8) {
      const auto isal = benchutil::make_measured_coder(core::Backend::Isal, parity_for(c));
      isal_gbps = benchutil::median_encode_gbps(*isal, data.span(),
                                                parity.span(), kUnit, 11);
    }
    std::printf("(%2u,%zu)    %6zu %14.1f %12.2f %12.2f %14.2f\n", c.w, c.r,
                bits.ones(),
                static_cast<double>(bits.ones()) /
                    static_cast<double>(bits.bits().rows()),
                uezato_gbps, gemm_gbps, isal_gbps);
  }
  std::printf("\n(isal is GF(2^8)-only; blank elsewhere)\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (const Case& c : kCases) {
    for (const core::Backend b : {core::Backend::Uezato, core::Backend::Gemm}) {
      const std::string name = std::string("encode/") + core::to_string(b) +
                               "/w" + std::to_string(c.w) + "_r" +
                               std::to_string(c.r);
      benchmark::RegisterBenchmark(name.c_str(), bm_w, b, c);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
