// E9 — §8 future work: "we plan to include other classes of codes in our
// prototype, such as local reconstruction codes (LRCs)". Because an LRC
// is still a linear code, its encode runs through the same GEMM path —
// "theoretically, all linear codes can be developed via a highly
// optimized GEMM routine". Measures LRC encode throughput on every
// backend and the repair-locality advantage over RS.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ec/lrc.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;

// Azure-flavored LRC(12, 2, 2) vs the RS(12, 4) of equal tolerance count.
const ec::LrcParams kLrcParams{12, 2, 2, 8};

const ec::Lrc& lrc() {
  static const ec::Lrc code(kLrcParams);
  return code;
}

void bm_lrc_encode(benchmark::State& state, core::Backend backend) {
  const auto coder = benchutil::make_measured_coder(backend, lrc().parity_matrix());
  const auto data = benchutil::random_data(kLrcParams.k * kUnit, 11);
  tensor::AlignedBuffer<std::uint8_t> parity(
      (kLrcParams.l + kLrcParams.g) * kUnit);
  for (auto _ : state) coder->apply(data.span(), parity.span(), kUnit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kLrcParams.k * kUnit));
}

void print_paper_table() {
  benchutil::print_header(
      "E9 (Section 8 future work): LRC via the same GEMM routine",
      "all linear codes run through the optimized GEMM; LRC adds "
      "repair locality");

  const auto data = benchutil::random_data(kLrcParams.k * kUnit, 12);
  tensor::AlignedBuffer<std::uint8_t> parity(
      (kLrcParams.l + kLrcParams.g) * kUnit);

  std::printf("LRC(12,2,2) encode throughput, GB/s:\n");
  for (const core::Backend b :
       {core::Backend::JerasureSmart, core::Backend::Uezato,
        core::Backend::Isal, core::Backend::Gemm}) {
    const auto coder = benchutil::make_measured_coder(b, lrc().parity_matrix());
    const double gbps = benchutil::median_encode_gbps(
        *coder, data.span(), parity.span(), kUnit, 15);
    std::printf("  %-16s %8.2f\n", core::to_string(b), gbps);
  }

  // RS with the same parity count for comparison.
  const ec::ReedSolomon rs(ec::CodeParams{12, 4, 8});
  const auto rs_coder = benchutil::make_measured_coder(core::Backend::Gemm,
                                         rs.parity_matrix());
  tensor::AlignedBuffer<std::uint8_t> rs_parity(4 * kUnit);
  const double rs_gbps = benchutil::median_encode_gbps(
      *rs_coder, data.span(), rs_parity.span(), kUnit, 15);
  std::printf("  %-16s %8.2f   (same parity count, no locality)\n",
              "rs(12,4) tvm-ec", rs_gbps);

  // Repair locality: bytes read to repair one lost data unit.
  const auto local_plan = lrc().local_repair_plan(0);
  const auto rs_plan =
      ec::make_decode_plan(rs.generator(), std::vector<std::size_t>{0});
  std::printf("\nsingle-failure repair reads:\n");
  std::printf("  LRC local repair : %zu units (%zu KB)\n",
              local_plan->survivors.size(),
              local_plan->survivors.size() * kUnit / 1024);
  std::printf("  RS repair        : %zu units (%zu KB)  -> LRC reads %.1fx "
              "less\n",
              rs_plan->survivors.size(),
              rs_plan->survivors.size() * kUnit / 1024,
              static_cast<double>(rs_plan->survivors.size()) /
                  static_cast<double>(local_plan->survivors.size()));

  // Repair wall time through the GEMM path.
  const auto local_coder =
      benchutil::make_measured_coder(core::Backend::Gemm, local_plan->recovery);
  const auto rs_repair_coder =
      benchutil::make_measured_coder(core::Backend::Gemm, rs_plan->recovery);
  const auto local_in =
      benchutil::random_data(local_plan->survivors.size() * kUnit, 13);
  const auto rs_in =
      benchutil::random_data(rs_plan->survivors.size() * kUnit, 14);
  tensor::AlignedBuffer<std::uint8_t> out(kUnit);
  local_coder->apply(local_in.span(), out.span(), kUnit);
  const double local_secs = tune::measure_seconds_median(
      [&] { local_coder->apply(local_in.span(), out.span(), kUnit); }, 15);
  rs_repair_coder->apply(rs_in.span(), out.span(), kUnit);
  const double rs_secs = tune::measure_seconds_median(
      [&] { rs_repair_coder->apply(rs_in.span(), out.span(), kUnit); }, 15);
  std::printf("  repair compute   : LRC %.1f us vs RS %.1f us per unit\n",
              local_secs * 1e6, rs_secs * 1e6);
}

}  // namespace

int main(int argc, char** argv) {
  for (const core::Backend b :
       {core::Backend::Uezato, core::Backend::Isal, core::Backend::Gemm}) {
    const std::string name = std::string("lrc-encode/") + core::to_string(b);
    benchmark::RegisterBenchmark(name.c_str(), bm_lrc_encode, b);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
