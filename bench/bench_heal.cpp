// E24 (extension; robustness follow-up to E22) — the autonomous
// self-healing control plane: kill nodes under foreground load and let
// the membership detector + risk-prioritized healer bring the cluster
// back to full redundancy. Four tables:
//   E24a  detection-to-redundancy campaign per code shape (detection
//         ticks, drain ticks, units re-placed, wire bytes) with zero
//         data loss and zero unhealed recoverable stripes gated.
//   E24b  priority vs FIFO on the time-at-risk integral: stripe-ticks
//         spent at >= 2 erasures while the queue drains. Priority must
//         measurably beat FIFO on the same damage schedule.
//   E24c  token-bucket compliance: observed repair bytes over the busy
//         window must stay within 10% of the configured budget (plus
//         the burst allowance).
//   E24d  foreground interaction: deferral engages under load, the
//         healer still converges, and foreground get() p99 stays
//         bounded relative to the pre-damage baseline.
//
// --smoke: quick deterministic pass of all four tables, gated on the
// healer/membership/repair counter identities, the network byte ledger,
// convergence, and byte-identical post-heal reads; exits nonzero on any
// violation (CI runs this).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "cluster/healer.h"
#include "cluster/membership.h"
#include "cluster/repair.h"
#include "storage/fault_injector.h"

namespace {

using namespace tvmec;

bool g_smoke = false;
bool g_checks_ok = true;

std::size_t unit_bytes() { return g_smoke ? 16 * 1024 : 64 * 1024; }
std::size_t num_objects() { return g_smoke ? 4 : 16; }
constexpr std::size_t kStripesPerObject = 4;
constexpr std::size_t kDomains = 3;

cluster::ClusterConfig make_cluster_config(const ec::CodeParams& params) {
  cluster::ClusterConfig cc;
  cc.num_nodes = params.n() + 2;
  cc.num_domains = kDomains;
  cc.retry.max_attempts = 6;
  return cc;
}

void fill(cluster::Cluster& cl, const ec::CodeParams& params) {
  const std::size_t object_bytes = kStripesPerObject * params.k * unit_bytes();
  for (std::size_t i = 0; i < num_objects(); ++i) {
    const auto data = benchutil::random_data(object_bytes, 40 + i);
    cl.put("obj" + std::to_string(i),
           std::span<const std::uint8_t>(data.data(), data.size()));
  }
}

/// One foreground read, timed on the virtual clock (the only clock the
/// simulation has). A failed read is a check failure: the campaign's
/// damage never exceeds the parity budget.
std::uint64_t timed_get(cluster::Cluster& cl, std::size_t i) {
  const std::uint64_t t0 = cl.net().now_us();
  try {
    const auto got = cl.get("obj" + std::to_string(i % num_objects()));
    if (!got) {
      std::printf("  !! foreground get lost obj%zu\n", i % num_objects());
      g_checks_ok = false;
    }
  } catch (const std::exception& e) {
    std::printf("  !! foreground get failed within budget: %s\n", e.what());
    g_checks_ok = false;
  }
  return cl.net().now_us() - t0;
}

std::size_t stripes_at_risk(cluster::Cluster& cl) {
  std::size_t n = 0;
  for (const auto& name : cl.object_names())
    for (std::size_t s = 0; s < cl.object_stripe_count(name); ++s)
      if (cl.repairer().stripe_health(name, s).erased >= 2) ++n;
  return n;
}

std::uint64_t percentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[static_cast<std::size_t>(p * static_cast<double>(v.size() - 1))];
}

struct CampaignResult {
  std::size_t detection_ticks = 0;  ///< crash -> Dead verdict
  std::size_t drain_ticks = 0;      ///< verdict -> empty queue
  double at_risk_integral = 0;      ///< stripe-ticks at >= 2 erasures
  std::uint64_t repair_bytes = 0;
  std::uint64_t busy_us = 0;  ///< virtual time of the drain window
  std::uint64_t baseline_p99 = 0;
  std::uint64_t repair_p99 = 0;
  cluster::HealerStats hstats;
};

/// The campaign every table shares: kill node 1 under foreground load,
/// escalate a few late-queued stripes to >= 2 erasures, then drain to
/// convergence while sampling risk and foreground latency each tick.
/// All gates (identities, convergence, full redundancy, byte-identical
/// reads) run at the end regardless of the arm.
CampaignResult run_heal_campaign(const ec::CodeParams& params, bool priority,
                                 std::uint64_t rate, std::uint64_t defer,
                                 std::uint64_t seed) {
  cluster::Cluster cl(params, unit_bytes(), make_cluster_config(params));
  fill(cl, params);
  storage::FaultInjector injector({}, seed);
  cl.attach_fault_injector(&injector);

  cluster::Membership membership(cl);
  cluster::HealerConfig hc;
  hc.priority_enabled = priority;
  hc.repair_bytes_per_sec = rate;
  hc.burst_bytes = 64 * 1024;
  hc.foreground_defer_bytes = defer;
  hc.max_repairs_per_tick = 1;  // drain length == queue depth, so the
                                // at-risk integral is comparable across arms
  cluster::Healer healer(cl, &membership, hc);
  for (int t = 0; t < 16; ++t) healer.tick();  // warm the gap estimators

  CampaignResult res;
  std::vector<std::uint64_t> baseline;
  for (std::size_t i = 0; i < 32; ++i) baseline.push_back(timed_get(cl, i));
  res.baseline_p99 = percentile(baseline, 0.99);

  // Kill under load: foreground reads keep flowing while phi accrues.
  injector.crash_node(1);
  std::size_t fg = 0;
  while (res.detection_ticks < 64 &&
         healer.stats().nodes_declared_dead == 0) {
    healer.tick();
    ++res.detection_ticks;
    if (res.detection_ticks % 2 == 0) timed_get(cl, fg++);
  }
  if (healer.stats().nodes_declared_dead == 0) {
    std::printf("  !! no Dead verdict within 64 heartbeat intervals\n");
    g_checks_ok = false;
  }

  // Escalate the last objects' stripes (late in FIFO arrival order) to
  // >= 2 erasures; scrub turns the latent corruption into damage
  // events. FIFO leaves them waiting behind the single-erasure backlog;
  // priority pulls them to the front.
  const std::size_t corrupt_units = std::min<std::size_t>(2, params.r - 1);
  const std::string last = "obj" + std::to_string(num_objects() - 1);
  for (std::size_t s = 0; s < kStripesPerObject; ++s)
    for (std::size_t u = 0; u < corrupt_units; ++u)
      cl.corrupt_unit(last, s, u);
  cl.scrub();

  const std::uint64_t busy_t0 = cl.net().now_us();
  const std::uint64_t bytes0 = healer.stats().repair_bytes;
  std::vector<std::uint64_t> under_repair;
  while (healer.pending() != 0 && res.drain_ticks < 20000) {
    healer.tick();
    ++res.drain_ticks;
    res.at_risk_integral += static_cast<double>(stripes_at_risk(cl));
    if (res.drain_ticks % 2 == 0)
      under_repair.push_back(timed_get(cl, fg++));
  }
  res.busy_us = cl.net().now_us() - busy_t0;
  res.repair_bytes = healer.stats().repair_bytes - bytes0;
  res.repair_p99 = percentile(under_repair, 0.99);
  res.hstats = healer.stats();

  // Gates. Convergence first: an unfinished drain poisons the rest.
  if (healer.pending() != 0 || healer.parked_now() != 0) {
    std::printf("  !! healer did not converge (pending=%zu parked=%zu)\n",
                healer.pending(), healer.parked_now());
    g_checks_ok = false;
  }
  // Zero unhealed recoverable stripes: full redundancy on the routing
  // view, the dead node re-placed around.
  for (const auto& name : cl.object_names())
    for (std::size_t s = 0; s < cl.object_stripe_count(name); ++s) {
      const cluster::StripeHealth h = cl.repairer().stripe_health(name, s);
      if (h.erased != 0) {
        std::printf("  !! %s/%zu left with %zu erasures\n", name.c_str(), s,
                    h.erased);
        g_checks_ok = false;
      }
    }
  // Zero data loss: every object byte-identical to what was written.
  const std::size_t object_bytes = kStripesPerObject * params.k * unit_bytes();
  for (std::size_t i = 0; i < num_objects(); ++i) {
    const auto want = benchutil::random_data(object_bytes, 40 + i);
    try {
      const auto got = cl.get("obj" + std::to_string(i));
      if (!got || got->size() != object_bytes ||
          std::memcmp(got->data(), want.data(), object_bytes) != 0) {
        std::printf("  !! obj%zu diverges after heal\n", i);
        g_checks_ok = false;
      }
    } catch (const std::exception& e) {
      std::printf("  !! obj%zu unreadable after heal: %s\n", i, e.what());
      g_checks_ok = false;
    }
  }
  // Identity sweep.
  if (!healer.identity_holds()) {
    std::printf("  !! healer accounting identity violated\n");
    g_checks_ok = false;
  }
  if (!membership.probe_identity_holds() ||
      !membership.transitions_balance()) {
    std::printf("  !! membership counter identities violated\n");
    g_checks_ok = false;
  }
  if (!cl.repair_stats().identity_holds()) {
    std::printf("  !! repair counter identity violated\n");
    g_checks_ok = false;
  }
  if (!cl.net().stats().balanced()) {
    std::printf("  !! network byte ledger does not balance\n");
    g_checks_ok = false;
  }
  return res;
}

void bm_heal_campaign(benchmark::State& state) {
  const ec::CodeParams params{6, 3, 8};
  std::uint64_t units = 0;
  for (auto _ : state) {
    const CampaignResult r =
        run_heal_campaign(params, /*priority=*/true, /*rate=*/0,
                          /*defer=*/0, 0x24);
    units += r.hstats.units_repaired;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(units));
}
BENCHMARK(bm_heal_campaign)->Unit(benchmark::kMillisecond);

void print_campaign_table() {
  benchutil::print_header(
      "E24a: kill-under-load heal campaign — detection to full redundancy",
      "node killed under foreground reads; gates: zero data loss, zero "
      "unhealed recoverable stripes, all counter identities");

  std::printf("%-9s %8s %8s %8s %8s %10s %10s\n", "code", "detect", "drain",
              "repaired", "units", "wire MB", "risk-intg");
  const ec::CodeParams shapes[] = {{4, 2, 8}, {6, 3, 8}, {10, 4, 8}};
  for (const auto& params : shapes) {
    const CampaignResult r =
        run_heal_campaign(params, /*priority=*/true, /*rate=*/0,
                          /*defer=*/0, 0x24A);
    std::printf("RS(%zu,%zu) %7zut %7zut %8llu %8llu %10.2f %10.0f\n",
                params.k, params.r, r.detection_ticks, r.drain_ticks,
                static_cast<unsigned long long>(r.hstats.repaired),
                static_cast<unsigned long long>(r.hstats.units_repaired),
                static_cast<double>(r.repair_bytes) / 1e6,
                r.at_risk_integral);
  }
}

void print_priority_table() {
  benchutil::print_header(
      "E24b: risk priority vs FIFO — time-at-risk integral",
      "same damage schedule; integral counts stripe-ticks spent at >= 2 "
      "erasures while the queue drains (lower is safer)");

  std::printf("%-9s %8s %10s %10s\n", "arm", "drain", "risk-intg",
              "wire MB");
  const ec::CodeParams params{6, 3, 8};
  double integral[2] = {0, 0};
  for (const bool priority : {true, false}) {
    const CampaignResult r = run_heal_campaign(params, priority, /*rate=*/0,
                                               /*defer=*/0, 0x24B);
    integral[priority ? 0 : 1] = r.at_risk_integral;
    std::printf("%-9s %7zut %10.0f %10.2f\n",
                priority ? "priority" : "fifo", r.drain_ticks,
                r.at_risk_integral,
                static_cast<double>(r.repair_bytes) / 1e6);
  }
  if (!(integral[0] < integral[1])) {
    std::printf("  !! priority did not beat FIFO on time-at-risk "
                "(%.0f vs %.0f)\n",
                integral[0], integral[1]);
    g_checks_ok = false;
  }
}

void print_token_bucket_table() {
  benchutil::print_header(
      "E24c: token-bucket budget compliance over the busy window",
      "observed repair traffic must stay within 10% of budget x window "
      "plus the burst allowance; 0 = unlimited baseline");

  std::printf("%-12s %8s %10s %12s %12s %8s\n", "budget MB/s", "drain",
              "wire MB", "window ms", "obs MB/s", "thrott");
  const ec::CodeParams params{6, 3, 8};
  const std::uint64_t rates[] = {0, 1 << 20, 4 << 20};
  for (const std::uint64_t rate : rates) {
    const CampaignResult r = run_heal_campaign(params, /*priority=*/true,
                                               rate, /*defer=*/0, 0x24C);
    const double window_s = static_cast<double>(r.busy_us) / 1e6;
    const double observed =
        window_s > 0 ? static_cast<double>(r.repair_bytes) / window_s : 0;
    std::printf("%12.1f %7zut %10.2f %12.1f %12.2f %8llu\n",
                static_cast<double>(rate) / 1e6, r.drain_ticks,
                static_cast<double>(r.repair_bytes) / 1e6,
                static_cast<double>(r.busy_us) / 1e3, observed / 1e6,
                static_cast<unsigned long long>(r.hstats.throttled_ticks));
    if (rate != 0) {
      const double allowance =
          1.1 * (static_cast<double>(rate) * window_s + (64.0 * 1024));
      if (static_cast<double>(r.repair_bytes) > allowance) {
        std::printf("  !! budget exceeded: %.0f bytes > %.0f allowed\n",
                    static_cast<double>(r.repair_bytes), allowance);
        g_checks_ok = false;
      }
      if (r.hstats.throttled_ticks == 0) {
        std::printf("  !! rate-limited arm never throttled — budget "
                    "not exercised\n");
        g_checks_ok = false;
      }
    }
  }
}

void print_foreground_table() {
  benchutil::print_header(
      "E24d: foreground interaction — deferral and read p99",
      "healer pauses under foreground load (defer arm) yet still "
      "converges; foreground get() p99 stays bounded vs pre-damage");

  std::printf("%-10s %8s %8s %12s %12s\n", "arm", "drain", "defer",
              "base p99us", "heal p99us");
  const ec::CodeParams params{6, 3, 8};
  const std::size_t object_bytes =
      kStripesPerObject * params.k * unit_bytes();
  const std::uint64_t defers[] = {0, object_bytes / 2};
  for (const std::uint64_t defer : defers) {
    const CampaignResult r = run_heal_campaign(params, /*priority=*/true,
                                               /*rate=*/0, defer, 0x24D);
    std::printf("%-10s %7zut %8llu %12llu %12llu\n",
                defer == 0 ? "no-defer" : "defer",
                r.drain_ticks,
                static_cast<unsigned long long>(r.hstats.deferred_ticks),
                static_cast<unsigned long long>(r.baseline_p99),
                static_cast<unsigned long long>(r.repair_p99));
    if (defer != 0 && r.hstats.deferred_ticks == 0) {
      std::printf("  !! deferral never engaged under foreground load\n");
      g_checks_ok = false;
    }
    if (r.repair_p99 > 3 * std::max<std::uint64_t>(r.baseline_p99, 1)) {
      std::printf("  !! foreground p99 blew past 3x the baseline\n");
      g_checks_ok = false;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (!g_smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  print_campaign_table();
  print_priority_table();
  print_token_bucket_table();
  print_foreground_table();
  if (!g_checks_ok)
    std::printf("\nE24: CHECK FAILURES above — see !! lines\n");
  return g_checks_ok ? 0 : 1;
}
