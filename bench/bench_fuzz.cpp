// E18 (extension; testing-infrastructure follow-up to E17) — differential
// fuzz harness throughput: configs/sec for each scenario and for the
// mixed randomized campaign. This prices the nightly CI budget: at the
// measured rate, a 10-minute scheduled job covers rate x 600 random
// configs. A regression here silently shrinks nightly coverage, so the
// harness itself is benchmarked like any other subsystem.

#include <benchmark/benchmark.h>

#include <random>

#include "testing/diff_fuzzer.h"
#include "testing/fuzz_config.h"

namespace {

using namespace tvmec;

/// One fixed, representative config per scenario (mid-sized shapes so
/// the numbers reflect real campaign work, not degenerate k==1 draws).
testing::FuzzConfig scenario_config(testing::Scenario s) {
  testing::FuzzConfig c;
  c.scenario = s;
  c.k = 8;
  c.r = 3;
  c.w = 8;
  c.unit_size = 512;
  c.seed = 99;
  switch (s) {
    case testing::Scenario::RsDecode:
      c.losses = {1, 6, 9};
      break;
    case testing::Scenario::LrcRoundTrip:
      c.l = 2;
      c.r = 2;
      c.losses = {0, 9};
      break;
    case testing::Scenario::StorageRoundTrip:
    case testing::Scenario::StorageFaulted:
      c.losses = {2};
      break;
    case testing::Scenario::Serve:
    case testing::Scenario::ServeChaos:
    case testing::Scenario::ServeShard:
      c.losses = {1, 6};
      break;
    case testing::Scenario::Cluster:
    case testing::Scenario::ClusterRepair:
    case testing::Scenario::ClusterHeal:
      c.losses = {2, 7};
      break;
    case testing::Scenario::RsEncode:
      break;
  }
  return c;
}

void bm_fuzz_scenario(benchmark::State& state,
                      const testing::Scenario scenario) {
  const testing::FuzzConfig config = scenario_config(scenario);
  for (auto _ : state) {
    const testing::FuzzOutcome outcome = testing::DiffFuzzer::run_one(config);
    if (!outcome.ok) state.SkipWithError(outcome.detail.c_str());
    benchmark::DoNotOptimize(outcome.iterations);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

/// The mixed campaign, as CI runs it: random configs from a seeded
/// stream. items/sec here is directly the nightly coverage rate.
void bm_fuzz_campaign(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const testing::FuzzOutcome outcome =
        testing::DiffFuzzer::run_campaign(seed++, batch);
    if (!outcome.ok) state.SkipWithError(outcome.detail.c_str());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * batch));
}

BENCHMARK_CAPTURE(bm_fuzz_scenario, rs_encode,
                  testing::Scenario::RsEncode)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, rs_decode,
                  testing::Scenario::RsDecode)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, lrc,
                  testing::Scenario::LrcRoundTrip)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, store,
                  testing::Scenario::StorageRoundTrip)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, store_fault,
                  testing::Scenario::StorageFaulted)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, serve,
                  testing::Scenario::Serve)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, serve_chaos,
                  testing::Scenario::ServeChaos)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, serve_shard,
                  testing::Scenario::ServeShard)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, cluster,
                  testing::Scenario::Cluster)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, cluster_repair,
                  testing::Scenario::ClusterRepair)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(bm_fuzz_scenario, cluster_heal,
                  testing::Scenario::ClusterHeal)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_fuzz_campaign)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
