// E22 (extension; robustness follow-up to E17/E20) — repair traffic
// shape in a simulated multi-node cluster: DAG-based repair with
// partial aggregation at helper nodes vs the naive k-unit star fetch.
// For an MDS code both arms move the same total payload, so the win is
// in the *shape*: cross-failure-domain bytes, root-node ingress, the
// hottest single link, and the modeled makespan (stage-1 aggregation
// runs domain-parallel). A second table prices robustness: repair under
// seeded link chaos (drops, duplicates, partition windows, helper
// crashes) — replans and naive fallbacks vs the fault rate, with the
// counter identities checked after every run.
//
// --smoke: quick deterministic pass of both tables, gated on the repair
// counter identity, the network byte ledger, and byte-identical
// post-repair reads; exits nonzero on any violation (CI runs this).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cluster/cluster.h"
#include "cluster/repair.h"
#include "storage/fault_injector.h"

namespace {

using namespace tvmec;

bool g_smoke = false;
bool g_checks_ok = true;

std::size_t unit_bytes() { return g_smoke ? 16 * 1024 : 64 * 1024; }
std::size_t num_objects() { return g_smoke ? 4 : 16; }
constexpr std::size_t kStripesPerObject = 4;
constexpr std::size_t kDomains = 3;

struct RepairTotals {
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t cross_domain_bytes = 0;
  std::uint64_t root_ingress_bytes = 0;
  std::uint64_t max_link_bytes = 0;
  std::uint64_t makespan_us = 0;
  std::size_t units = 0;
  std::size_t replans = 0;
  std::size_t naive = 0;
  std::size_t incomplete = 0;
  double wall_secs = 0;
};

cluster::ClusterConfig make_cluster_config(const ec::CodeParams& params) {
  cluster::ClusterConfig cc;
  cc.num_nodes = params.n() + 2;
  cc.num_domains = kDomains;
  cc.retry.max_attempts = 6;
  return cc;
}

void fill(cluster::Cluster& cl, const ec::CodeParams& params) {
  const std::size_t object_bytes = kStripesPerObject * params.k * unit_bytes();
  for (std::size_t i = 0; i < num_objects(); ++i) {
    const auto data = benchutil::random_data(object_bytes, 40 + i);
    cl.put("obj" + std::to_string(i),
           std::span<const std::uint8_t>(data.data(), data.size()));
  }
}

/// Fails one node, repairs every stripe, and sums the per-stripe
/// reports. Verifies every object reads back byte-identical afterwards
/// (smoke gate) — repair must never trade integrity for traffic shape.
RepairTotals run_repair(const ec::CodeParams& params, bool dag,
                        const storage::FaultPolicy* chaos,
                        std::uint64_t seed) {
  cluster::Cluster cl(params, unit_bytes(), make_cluster_config(params));
  fill(cl, params);

  cluster::RepairConfig rc;
  rc.dag_enabled = dag;
  cl.set_repair_config(rc);

  storage::FaultInjector injector(chaos ? *chaos : storage::FaultPolicy{},
                                  seed);
  if (chaos != nullptr) cl.attach_fault_injector(&injector);
  cl.fail_node(1);

  RepairTotals t;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& name : cl.object_names()) {
    for (std::size_t s = 0; s < cl.object_stripe_count(name); ++s) {
      const cluster::RepairReport r = cl.repairer().repair_stripe(name, s);
      t.bytes_on_wire += r.bytes_on_wire;
      t.cross_domain_bytes += r.cross_domain_bytes;
      t.root_ingress_bytes += r.root_ingress_bytes;
      t.max_link_bytes = std::max(t.max_link_bytes, r.max_link_bytes);
      t.makespan_us += r.makespan_us;
      t.units += r.units_repaired;
      t.replans += r.replans;
      t.naive += r.used_naive ? 1 : 0;
      t.incomplete += r.completed ? 0 : 1;
    }
  }
  t.wall_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (!cl.repair_stats().identity_holds()) {
    std::printf("  !! repair counter identity violated (dag=%d)\n", dag);
    g_checks_ok = false;
  }
  if (!cl.net().stats().balanced()) {
    std::printf("  !! network byte ledger does not balance (dag=%d)\n", dag);
    g_checks_ok = false;
  }

  // Post-repair integrity: quiet the chaos and read everything back.
  cl.attach_fault_injector(nullptr);
  for (std::size_t i = 0; i < num_objects(); ++i) {
    const std::size_t object_bytes =
        kStripesPerObject * params.k * unit_bytes();
    const auto want = benchutil::random_data(object_bytes, 40 + i);
    try {
      const auto got = cl.get("obj" + std::to_string(i));
      if (!got || got->size() != object_bytes ||
          std::memcmp(got->data(), want.data(), object_bytes) != 0) {
        std::printf("  !! obj%zu diverges after repair (dag=%d)\n", i, dag);
        g_checks_ok = false;
      }
    } catch (const std::exception& e) {
      std::printf("  !! obj%zu unreadable after repair (dag=%d): %s\n", i, dag,
                  e.what());
      g_checks_ok = false;
    }
  }
  return t;
}

void bm_repair_stripe(benchmark::State& state) {
  const bool dag = state.range(0) != 0;
  const ec::CodeParams params{6, 3, 8};
  cluster::Cluster cl(params, unit_bytes(), make_cluster_config(params));
  fill(cl, params);
  cluster::RepairConfig rc;
  rc.dag_enabled = dag;
  cl.set_repair_config(rc);

  std::uint64_t bytes = 0;
  std::size_t s = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cl.fail_node(1);
    state.ResumeTiming();
    const auto r =
        cl.repairer().repair_stripe("obj0", s % kStripesPerObject);
    bytes += r.bytes_on_wire;
    state.PauseTiming();
    cl.revive_node(1);  // units were re-placed; next round fails it again
    state.ResumeTiming();
    ++s;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(dag ? "dag" : "naive");
}
BENCHMARK(bm_repair_stripe)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void print_traffic_shape_table() {
  benchutil::print_header(
      "E22: repair traffic shape — DAG aggregation vs naive star fetch",
      "equal total payload for MDS codes; the DAG wins on cross-domain "
      "bytes, root ingress, hottest link, and modeled makespan");

  std::printf("%-9s %-6s %10s %10s %10s %10s %10s %8s\n", "code", "arm",
              "wire MB", "x-dom MB", "root MB", "maxlink", "mkspan ms",
              "wall ms");
  const ec::CodeParams shapes[] = {{4, 2, 8}, {6, 3, 8}, {10, 4, 8}};
  for (const auto& params : shapes) {
    RepairTotals arms[2];
    for (const bool dag : {true, false}) {
      const RepairTotals t = run_repair(params, dag, nullptr, 0x22);
      arms[dag ? 0 : 1] = t;
      std::printf(
          "RS(%zu,%zu) %-6s %10.2f %10.2f %10.2f %7.0fKB %10.1f %8.1f\n",
          params.k, params.r, dag ? "dag" : "naive", t.bytes_on_wire / 1e6,
          t.cross_domain_bytes / 1e6, t.root_ingress_bytes / 1e6,
          t.max_link_bytes / 1e3, t.makespan_us / 1e3, t.wall_secs * 1e3);
    }
    if (arms[0].cross_domain_bytes >= arms[1].cross_domain_bytes)
      std::printf("  !! DAG did not reduce cross-domain bytes for RS(%zu,%zu)\n",
                  params.k, params.r);
  }
}

void print_chaos_table() {
  benchutil::print_header(
      "E22b: DAG repair under link chaos — replans and fallbacks vs rate",
      "drops/duplicates/partitions/helper crashes; counter identities "
      "checked after every run, reads must stay byte-identical");

  std::printf("%-10s %10s %10s %8s %8s %8s %10s\n", "link-fault", "wire MB",
              "x-dom MB", "units", "replans", "naive", "incomplete");
  const ec::CodeParams params{6, 3, 8};
  const double rates[] = {0.0, 0.02, 0.05, 0.10};
  for (const double rate : rates) {
    storage::FaultPolicy chaos;
    chaos.link_drop = rate;
    chaos.link_duplicate = rate / 2;
    chaos.link_partition = rate / 10;
    chaos.partition_ops = 8;
    chaos.transient_read = rate / 2;
    // Crashes are permanent for the whole run and compound over every
    // op, so keep them rare enough that the sweep axis stays the link
    // rate (the mid-repair crash path itself is covered by the chaos
    // tests and the cluster-repair fuzz scenario).
    chaos.crash = rate / 500;
    const RepairTotals t = run_repair(params, true, &chaos, 0x22B);
    std::printf("%9.1f%% %10.1f %10.1f %8zu %8zu %8zu %10zu\n", rate * 100,
                t.bytes_on_wire / 1e6, t.cross_domain_bytes / 1e6, t.units,
                t.replans, t.naive, t.incomplete);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      g_smoke = true;
    else
      argv[out++] = argv[i];
  }
  argc = out;

  benchmark::Initialize(&argc, argv);
  if (!g_smoke) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  print_traffic_shape_table();
  print_chaos_table();
  if (!g_checks_ok)
    std::printf("\nE22: CHECK FAILURES above — see !! lines\n");
  return g_checks_ok ? 0 : 1;
}
