// E10 — §8 future work: throughput *and latency* sensitivity to unit
// size, k=10 r=4 w=8, units from 4 KB to 4 MB. Small units measure
// per-call latency (the metric a write path cares about); large units
// measure streaming throughput and cache behaviour.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_util.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kK = 10;
constexpr std::size_t kR = 4;

const std::vector<std::size_t> kUnitSizes = {
    4 << 10, 16 << 10, 64 << 10, 128 << 10, 512 << 10, 1 << 20, 4 << 20};

const gf::Matrix& parity_matrix() {
  static const ec::ReedSolomon rs(ec::CodeParams{kK, kR, 8});
  static const gf::Matrix parity = rs.parity_matrix();
  return parity;
}

void bm_unit(benchmark::State& state, core::Backend backend) {
  const std::size_t unit = static_cast<std::size_t>(state.range(0));
  const auto coder = benchutil::make_measured_coder(backend, parity_matrix());
  const auto data = benchutil::random_data(kK * unit, unit);
  tensor::AlignedBuffer<std::uint8_t> parity(kR * unit);
  for (auto _ : state) coder->apply(data.span(), parity.span(), unit);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kK * unit));
}

void print_paper_table() {
  benchutil::print_header(
      "E10 (Section 8 future work): unit-size sweep, k=10 r=4 w=8",
      "throughput and per-call latency across unit sizes");

  std::printf("%-12s %14s %14s %16s %16s\n", "unit", "uezato GB/s",
              "tvm-ec GB/s", "uezato us/call", "tvm-ec us/call");
  for (const std::size_t unit : kUnitSizes) {
    const auto uezato = benchutil::make_measured_coder(core::Backend::Uezato,
                                         parity_matrix());
    const auto gemm = benchutil::make_measured_coder(core::Backend::Gemm, parity_matrix());
    const auto data = benchutil::random_data(kK * unit, unit + 1);
    tensor::AlignedBuffer<std::uint8_t> parity(kR * unit);

    uezato->apply(data.span(), parity.span(), unit);
    const double uezato_secs = tune::measure_seconds_median(
        [&] { uezato->apply(data.span(), parity.span(), unit); }, 15);
    gemm->apply(data.span(), parity.span(), unit);
    const double gemm_secs = tune::measure_seconds_median(
        [&] { gemm->apply(data.span(), parity.span(), unit); }, 15);
    const double bytes = static_cast<double>(kK * unit);
    std::printf("%-12zu %14.2f %14.2f %16.1f %16.1f\n", unit,
                bytes / uezato_secs / 1e9, bytes / gemm_secs / 1e9,
                uezato_secs * 1e6, gemm_secs * 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const core::Backend b : {core::Backend::Uezato, core::Backend::Gemm}) {
    const std::string name = std::string("encode/") + core::to_string(b);
    auto* bench = benchmark::RegisterBenchmark(name.c_str(), bm_unit, b);
    for (const std::size_t unit : kUnitSizes)
      bench->Arg(static_cast<std::int64_t>(unit));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
