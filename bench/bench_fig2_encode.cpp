// E1 + E3 — Figure 2: encoding throughput (GB/s) of TVM-EC vs the
// custom-library baselines (Uezato SC'21 and Intel ISA-L) for k in
// {8,9,10}, r in {2,3,4}, w = 8, 128 KB units; plus the derived speedup
// table behind the paper's headline "up to 1.75x faster, growing with r".

#include <benchmark/benchmark.h>

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "ec/reed_solomon.h"

namespace {

using namespace tvmec;

constexpr std::size_t kUnit = 128 * 1024;
constexpr std::size_t kTuneTrials = 96;

struct GridPoint {
  std::size_t k, r;
};

const std::vector<GridPoint> kGrid = {{8, 2},  {8, 3},  {8, 4},
                                      {9, 2},  {9, 3},  {9, 4},
                                      {10, 2}, {10, 3}, {10, 4}};

/// Backends shown in Figure 2 (plus the naive floor and an untuned GEMM
/// for context). "tvm-ec" is the tuned GEMM backend.
struct Entry {
  std::string label;
  std::unique_ptr<ec::MatrixCoder> coder;
};

std::vector<Entry> make_entries(const GridPoint& g) {
  const ec::ReedSolomon rs(ec::CodeParams{g.k, g.r, 8});
  const auto parity = rs.parity_matrix();
  std::vector<Entry> entries;
  entries.push_back({"naive", core::make_coder(core::Backend::NaiveBitmatrix,
                                               parity)});
  entries.push_back(
      {"jerasure", core::make_coder(core::Backend::JerasureSmart, parity)});
  entries.push_back(
      {"uezato", core::make_coder(core::Backend::Uezato, parity)});
  entries.push_back({"isal", core::make_coder(core::Backend::Isal, parity)});

  auto untuned = std::make_unique<core::GemmCoder>(parity);
  entries.push_back({"tvm-ec-untuned", std::move(untuned)});

  auto tuned = std::make_unique<core::GemmCoder>(parity);
  benchutil::tune_gemm(*tuned, kUnit, kTuneTrials,
                       static_cast<int>(std::thread::hardware_concurrency()));
  entries.push_back({"tvm-ec", std::move(tuned)});
  return entries;
}

void bm_encode(benchmark::State& state, const ec::MatrixCoder* coder,
               std::size_t k) {
  const auto data = benchutil::random_data(k * kUnit, 1);
  tensor::AlignedBuffer<std::uint8_t> parity(coder->out_units() * kUnit);
  for (auto _ : state) {
    coder->apply(data.span(), parity.span(), kUnit);
    benchmark::DoNotOptimize(parity.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k * kUnit));
}

/// Owns every coder for the lifetime of the benchmark run.
std::vector<std::vector<Entry>>& all_entries() {
  static std::vector<std::vector<Entry>> entries;
  return entries;
}

void print_paper_table() {
  benchutil::print_header(
      "E1 (Figure 2): encoding throughput, GB/s",
      "TVM-EC similar or higher than Uezato/ISA-L everywhere; up to 1.75x");

  std::printf("%-8s", "(k,r)");
  const std::vector<std::string> cols = {"naive",          "jerasure",
                                         "uezato",         "isal",
                                         "tvm-ec-untuned", "tvm-ec"};
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("%16s\n", "speedup*");

  double max_speedup = 0;
  std::size_t grid_idx = 0;
  for (const auto& g : kGrid) {
    const auto& entries = all_entries()[grid_idx++];
    const auto data = benchutil::random_data(g.k * kUnit, 2);
    // Round-robin measurement: slow CPU-frequency / noisy-neighbor drift
    // hits every backend equally instead of whichever ran last.
    std::vector<const ec::MatrixCoder*> coders;
    for (const auto& e : entries) coders.push_back(e.coder.get());
    const std::vector<double> medians =
        benchutil::interleaved_median_gbps(coders, data.span(), kUnit);
    std::map<std::string, double> gbps;
    for (std::size_t i = 0; i < entries.size(); ++i)
      gbps[entries[i].label] = medians[i];
    const double best_baseline = std::max(gbps["uezato"], gbps["isal"]);
    const double speedup = gbps["tvm-ec"] / best_baseline;
    max_speedup = std::max(max_speedup, speedup);

    std::printf("(%zu,%zu)  ", g.k, g.r);
    for (const auto& c : cols) std::printf("%16.2f", gbps[c]);
    std::printf("%15.2fx\n", speedup);
  }
  std::printf("\n* speedup = tvm-ec / max(uezato, isal)   "
              "max over grid: %.2fx (paper: 1.75x)\n",
              max_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  // Build coders (tuning included) once, register benchmarks over them.
  for (const auto& g : kGrid) {
    all_entries().push_back(make_entries(g));
    for (const auto& e : all_entries().back()) {
      const std::string name = "encode/" + e.label + "/k" +
                               std::to_string(g.k) + "_r" +
                               std::to_string(g.r);
      benchmark::RegisterBenchmark(name.c_str(), bm_encode, e.coder.get(),
                                   g.k);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_paper_table();
  return 0;
}
