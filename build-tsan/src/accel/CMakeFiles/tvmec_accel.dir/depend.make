# Empty dependencies file for tvmec_accel.
# This may be replaced when dependencies are built.
