file(REMOVE_RECURSE
  "libtvmec_accel.a"
)
