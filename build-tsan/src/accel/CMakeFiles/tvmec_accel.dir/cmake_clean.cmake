file(REMOVE_RECURSE
  "CMakeFiles/tvmec_accel.dir/device.cpp.o"
  "CMakeFiles/tvmec_accel.dir/device.cpp.o.d"
  "CMakeFiles/tvmec_accel.dir/device_codec.cpp.o"
  "CMakeFiles/tvmec_accel.dir/device_codec.cpp.o.d"
  "libtvmec_accel.a"
  "libtvmec_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
