file(REMOVE_RECURSE
  "CMakeFiles/tvmec_gf.dir/bitmatrix.cpp.o"
  "CMakeFiles/tvmec_gf.dir/bitmatrix.cpp.o.d"
  "CMakeFiles/tvmec_gf.dir/gf.cpp.o"
  "CMakeFiles/tvmec_gf.dir/gf.cpp.o.d"
  "CMakeFiles/tvmec_gf.dir/gf_matrix.cpp.o"
  "CMakeFiles/tvmec_gf.dir/gf_matrix.cpp.o.d"
  "libtvmec_gf.a"
  "libtvmec_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
