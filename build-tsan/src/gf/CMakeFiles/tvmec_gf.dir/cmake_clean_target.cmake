file(REMOVE_RECURSE
  "libtvmec_gf.a"
)
