
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/bitmatrix.cpp" "src/gf/CMakeFiles/tvmec_gf.dir/bitmatrix.cpp.o" "gcc" "src/gf/CMakeFiles/tvmec_gf.dir/bitmatrix.cpp.o.d"
  "/root/repo/src/gf/gf.cpp" "src/gf/CMakeFiles/tvmec_gf.dir/gf.cpp.o" "gcc" "src/gf/CMakeFiles/tvmec_gf.dir/gf.cpp.o.d"
  "/root/repo/src/gf/gf_matrix.cpp" "src/gf/CMakeFiles/tvmec_gf.dir/gf_matrix.cpp.o" "gcc" "src/gf/CMakeFiles/tvmec_gf.dir/gf_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
