# Empty dependencies file for tvmec_gf.
# This may be replaced when dependencies are built.
