# Empty dependencies file for tvmec_ec.
# This may be replaced when dependencies are built.
