
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ec/bitmatrix_code.cpp" "src/ec/CMakeFiles/tvmec_ec.dir/bitmatrix_code.cpp.o" "gcc" "src/ec/CMakeFiles/tvmec_ec.dir/bitmatrix_code.cpp.o.d"
  "/root/repo/src/ec/decoder.cpp" "src/ec/CMakeFiles/tvmec_ec.dir/decoder.cpp.o" "gcc" "src/ec/CMakeFiles/tvmec_ec.dir/decoder.cpp.o.d"
  "/root/repo/src/ec/lrc.cpp" "src/ec/CMakeFiles/tvmec_ec.dir/lrc.cpp.o" "gcc" "src/ec/CMakeFiles/tvmec_ec.dir/lrc.cpp.o.d"
  "/root/repo/src/ec/reed_solomon.cpp" "src/ec/CMakeFiles/tvmec_ec.dir/reed_solomon.cpp.o" "gcc" "src/ec/CMakeFiles/tvmec_ec.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/gf/CMakeFiles/tvmec_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
