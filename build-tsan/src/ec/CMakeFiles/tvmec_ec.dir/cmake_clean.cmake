file(REMOVE_RECURSE
  "CMakeFiles/tvmec_ec.dir/bitmatrix_code.cpp.o"
  "CMakeFiles/tvmec_ec.dir/bitmatrix_code.cpp.o.d"
  "CMakeFiles/tvmec_ec.dir/decoder.cpp.o"
  "CMakeFiles/tvmec_ec.dir/decoder.cpp.o.d"
  "CMakeFiles/tvmec_ec.dir/lrc.cpp.o"
  "CMakeFiles/tvmec_ec.dir/lrc.cpp.o.d"
  "CMakeFiles/tvmec_ec.dir/reed_solomon.cpp.o"
  "CMakeFiles/tvmec_ec.dir/reed_solomon.cpp.o.d"
  "libtvmec_ec.a"
  "libtvmec_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
