file(REMOVE_RECURSE
  "libtvmec_ec.a"
)
