
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/isal_like.cpp" "src/baselines/CMakeFiles/tvmec_baselines.dir/isal_like.cpp.o" "gcc" "src/baselines/CMakeFiles/tvmec_baselines.dir/isal_like.cpp.o.d"
  "/root/repo/src/baselines/jerasure_like.cpp" "src/baselines/CMakeFiles/tvmec_baselines.dir/jerasure_like.cpp.o" "gcc" "src/baselines/CMakeFiles/tvmec_baselines.dir/jerasure_like.cpp.o.d"
  "/root/repo/src/baselines/naive.cpp" "src/baselines/CMakeFiles/tvmec_baselines.dir/naive.cpp.o" "gcc" "src/baselines/CMakeFiles/tvmec_baselines.dir/naive.cpp.o.d"
  "/root/repo/src/baselines/xor_schedule.cpp" "src/baselines/CMakeFiles/tvmec_baselines.dir/xor_schedule.cpp.o" "gcc" "src/baselines/CMakeFiles/tvmec_baselines.dir/xor_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ec/CMakeFiles/tvmec_ec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gf/CMakeFiles/tvmec_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
