file(REMOVE_RECURSE
  "CMakeFiles/tvmec_baselines.dir/isal_like.cpp.o"
  "CMakeFiles/tvmec_baselines.dir/isal_like.cpp.o.d"
  "CMakeFiles/tvmec_baselines.dir/jerasure_like.cpp.o"
  "CMakeFiles/tvmec_baselines.dir/jerasure_like.cpp.o.d"
  "CMakeFiles/tvmec_baselines.dir/naive.cpp.o"
  "CMakeFiles/tvmec_baselines.dir/naive.cpp.o.d"
  "CMakeFiles/tvmec_baselines.dir/xor_schedule.cpp.o"
  "CMakeFiles/tvmec_baselines.dir/xor_schedule.cpp.o.d"
  "libtvmec_baselines.a"
  "libtvmec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
