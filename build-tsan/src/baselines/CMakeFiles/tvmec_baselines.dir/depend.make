# Empty dependencies file for tvmec_baselines.
# This may be replaced when dependencies are built.
