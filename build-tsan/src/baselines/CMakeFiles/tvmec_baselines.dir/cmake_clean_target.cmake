file(REMOVE_RECURSE
  "libtvmec_baselines.a"
)
