file(REMOVE_RECURSE
  "libtvmec_tensor.a"
)
