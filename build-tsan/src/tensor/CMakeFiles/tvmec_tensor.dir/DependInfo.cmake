
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/expr.cpp" "src/tensor/CMakeFiles/tvmec_tensor.dir/expr.cpp.o" "gcc" "src/tensor/CMakeFiles/tvmec_tensor.dir/expr.cpp.o.d"
  "/root/repo/src/tensor/kernel.cpp" "src/tensor/CMakeFiles/tvmec_tensor.dir/kernel.cpp.o" "gcc" "src/tensor/CMakeFiles/tvmec_tensor.dir/kernel.cpp.o.d"
  "/root/repo/src/tensor/schedule.cpp" "src/tensor/CMakeFiles/tvmec_tensor.dir/schedule.cpp.o" "gcc" "src/tensor/CMakeFiles/tvmec_tensor.dir/schedule.cpp.o.d"
  "/root/repo/src/tensor/threadpool.cpp" "src/tensor/CMakeFiles/tvmec_tensor.dir/threadpool.cpp.o" "gcc" "src/tensor/CMakeFiles/tvmec_tensor.dir/threadpool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
