# Empty dependencies file for tvmec_tensor.
# This may be replaced when dependencies are built.
