file(REMOVE_RECURSE
  "CMakeFiles/tvmec_tensor.dir/expr.cpp.o"
  "CMakeFiles/tvmec_tensor.dir/expr.cpp.o.d"
  "CMakeFiles/tvmec_tensor.dir/kernel.cpp.o"
  "CMakeFiles/tvmec_tensor.dir/kernel.cpp.o.d"
  "CMakeFiles/tvmec_tensor.dir/schedule.cpp.o"
  "CMakeFiles/tvmec_tensor.dir/schedule.cpp.o.d"
  "CMakeFiles/tvmec_tensor.dir/threadpool.cpp.o"
  "CMakeFiles/tvmec_tensor.dir/threadpool.cpp.o.d"
  "libtvmec_tensor.a"
  "libtvmec_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
