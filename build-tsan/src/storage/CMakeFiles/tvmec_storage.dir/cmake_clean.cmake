file(REMOVE_RECURSE
  "CMakeFiles/tvmec_storage.dir/checkpoint.cpp.o"
  "CMakeFiles/tvmec_storage.dir/checkpoint.cpp.o.d"
  "CMakeFiles/tvmec_storage.dir/chunk_accumulator.cpp.o"
  "CMakeFiles/tvmec_storage.dir/chunk_accumulator.cpp.o.d"
  "CMakeFiles/tvmec_storage.dir/crc32c.cpp.o"
  "CMakeFiles/tvmec_storage.dir/crc32c.cpp.o.d"
  "CMakeFiles/tvmec_storage.dir/raid_array.cpp.o"
  "CMakeFiles/tvmec_storage.dir/raid_array.cpp.o.d"
  "CMakeFiles/tvmec_storage.dir/stripe_store.cpp.o"
  "CMakeFiles/tvmec_storage.dir/stripe_store.cpp.o.d"
  "libtvmec_storage.a"
  "libtvmec_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
