
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/checkpoint.cpp" "src/storage/CMakeFiles/tvmec_storage.dir/checkpoint.cpp.o" "gcc" "src/storage/CMakeFiles/tvmec_storage.dir/checkpoint.cpp.o.d"
  "/root/repo/src/storage/chunk_accumulator.cpp" "src/storage/CMakeFiles/tvmec_storage.dir/chunk_accumulator.cpp.o" "gcc" "src/storage/CMakeFiles/tvmec_storage.dir/chunk_accumulator.cpp.o.d"
  "/root/repo/src/storage/crc32c.cpp" "src/storage/CMakeFiles/tvmec_storage.dir/crc32c.cpp.o" "gcc" "src/storage/CMakeFiles/tvmec_storage.dir/crc32c.cpp.o.d"
  "/root/repo/src/storage/raid_array.cpp" "src/storage/CMakeFiles/tvmec_storage.dir/raid_array.cpp.o" "gcc" "src/storage/CMakeFiles/tvmec_storage.dir/raid_array.cpp.o.d"
  "/root/repo/src/storage/stripe_store.cpp" "src/storage/CMakeFiles/tvmec_storage.dir/stripe_store.cpp.o" "gcc" "src/storage/CMakeFiles/tvmec_storage.dir/stripe_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/tvmec_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tune/CMakeFiles/tvmec_tune.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/tvmec_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/tvmec_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ec/CMakeFiles/tvmec_ec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gf/CMakeFiles/tvmec_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
