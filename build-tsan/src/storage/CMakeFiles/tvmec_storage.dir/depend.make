# Empty dependencies file for tvmec_storage.
# This may be replaced when dependencies are built.
