file(REMOVE_RECURSE
  "libtvmec_storage.a"
)
