file(REMOVE_RECURSE
  "CMakeFiles/tvmec_core.dir/backends.cpp.o"
  "CMakeFiles/tvmec_core.dir/backends.cpp.o.d"
  "CMakeFiles/tvmec_core.dir/gemm_coder.cpp.o"
  "CMakeFiles/tvmec_core.dir/gemm_coder.cpp.o.d"
  "CMakeFiles/tvmec_core.dir/lrc_codec.cpp.o"
  "CMakeFiles/tvmec_core.dir/lrc_codec.cpp.o.d"
  "CMakeFiles/tvmec_core.dir/tvmec.cpp.o"
  "CMakeFiles/tvmec_core.dir/tvmec.cpp.o.d"
  "libtvmec_core.a"
  "libtvmec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
