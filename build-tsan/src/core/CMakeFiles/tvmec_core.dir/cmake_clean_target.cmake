file(REMOVE_RECURSE
  "libtvmec_core.a"
)
