# Empty dependencies file for tvmec_core.
# This may be replaced when dependencies are built.
