
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tune/cost_model.cpp" "src/tune/CMakeFiles/tvmec_tune.dir/cost_model.cpp.o" "gcc" "src/tune/CMakeFiles/tvmec_tune.dir/cost_model.cpp.o.d"
  "/root/repo/src/tune/search_space.cpp" "src/tune/CMakeFiles/tvmec_tune.dir/search_space.cpp.o" "gcc" "src/tune/CMakeFiles/tvmec_tune.dir/search_space.cpp.o.d"
  "/root/repo/src/tune/tuner.cpp" "src/tune/CMakeFiles/tvmec_tune.dir/tuner.cpp.o" "gcc" "src/tune/CMakeFiles/tvmec_tune.dir/tuner.cpp.o.d"
  "/root/repo/src/tune/tuning_log.cpp" "src/tune/CMakeFiles/tvmec_tune.dir/tuning_log.cpp.o" "gcc" "src/tune/CMakeFiles/tvmec_tune.dir/tuning_log.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tensor/CMakeFiles/tvmec_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
