file(REMOVE_RECURSE
  "libtvmec_tune.a"
)
