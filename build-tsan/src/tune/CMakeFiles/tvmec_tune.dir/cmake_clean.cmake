file(REMOVE_RECURSE
  "CMakeFiles/tvmec_tune.dir/cost_model.cpp.o"
  "CMakeFiles/tvmec_tune.dir/cost_model.cpp.o.d"
  "CMakeFiles/tvmec_tune.dir/search_space.cpp.o"
  "CMakeFiles/tvmec_tune.dir/search_space.cpp.o.d"
  "CMakeFiles/tvmec_tune.dir/tuner.cpp.o"
  "CMakeFiles/tvmec_tune.dir/tuner.cpp.o.d"
  "CMakeFiles/tvmec_tune.dir/tuning_log.cpp.o"
  "CMakeFiles/tvmec_tune.dir/tuning_log.cpp.o.d"
  "libtvmec_tune.a"
  "libtvmec_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvmec_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
