# Empty dependencies file for tvmec_tune.
# This may be replaced when dependencies are built.
