# Empty compiler generated dependencies file for ml_and_ec.
# This may be replaced when dependencies are built.
