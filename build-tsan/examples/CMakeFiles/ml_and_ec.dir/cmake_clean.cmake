file(REMOVE_RECURSE
  "CMakeFiles/ml_and_ec.dir/ml_and_ec.cpp.o"
  "CMakeFiles/ml_and_ec.dir/ml_and_ec.cpp.o.d"
  "ml_and_ec"
  "ml_and_ec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_and_ec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
