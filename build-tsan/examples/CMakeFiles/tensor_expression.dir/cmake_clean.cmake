file(REMOVE_RECURSE
  "CMakeFiles/tensor_expression.dir/tensor_expression.cpp.o"
  "CMakeFiles/tensor_expression.dir/tensor_expression.cpp.o.d"
  "tensor_expression"
  "tensor_expression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tensor_expression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
