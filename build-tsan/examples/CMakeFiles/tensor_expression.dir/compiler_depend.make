# Empty compiler generated dependencies file for tensor_expression.
# This may be replaced when dependencies are built.
