file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_training.dir/checkpoint_training.cpp.o"
  "CMakeFiles/checkpoint_training.dir/checkpoint_training.cpp.o.d"
  "checkpoint_training"
  "checkpoint_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
