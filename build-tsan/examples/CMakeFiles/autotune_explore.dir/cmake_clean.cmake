file(REMOVE_RECURSE
  "CMakeFiles/autotune_explore.dir/autotune_explore.cpp.o"
  "CMakeFiles/autotune_explore.dir/autotune_explore.cpp.o.d"
  "autotune_explore"
  "autotune_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
