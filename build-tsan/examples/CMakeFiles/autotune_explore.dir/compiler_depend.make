# Empty compiler generated dependencies file for autotune_explore.
# This may be replaced when dependencies are built.
