file(REMOVE_RECURSE
  "CMakeFiles/object_store_repair.dir/object_store_repair.cpp.o"
  "CMakeFiles/object_store_repair.dir/object_store_repair.cpp.o.d"
  "object_store_repair"
  "object_store_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_store_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
