# Empty dependencies file for object_store_repair.
# This may be replaced when dependencies are built.
