# Empty compiler generated dependencies file for file_shards.
# This may be replaced when dependencies are built.
