file(REMOVE_RECURSE
  "CMakeFiles/file_shards.dir/file_shards.cpp.o"
  "CMakeFiles/file_shards.dir/file_shards.cpp.o.d"
  "file_shards"
  "file_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
