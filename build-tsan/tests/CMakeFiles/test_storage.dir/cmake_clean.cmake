file(REMOVE_RECURSE
  "CMakeFiles/test_storage.dir/storage/checkpoint_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/checkpoint_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/chunk_accumulator_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/chunk_accumulator_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/crc32c_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/crc32c_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/raid_array_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/raid_array_test.cpp.o.d"
  "CMakeFiles/test_storage.dir/storage/stripe_store_test.cpp.o"
  "CMakeFiles/test_storage.dir/storage/stripe_store_test.cpp.o.d"
  "test_storage"
  "test_storage.pdb"
  "test_storage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
