
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/cross_backend_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/cross_backend_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/cross_backend_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/accel/CMakeFiles/tvmec_accel.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/tvmec_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/storage/CMakeFiles/tvmec_storage.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/tvmec_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ec/CMakeFiles/tvmec_ec.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tune/CMakeFiles/tvmec_tune.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/tvmec_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/gf/CMakeFiles/tvmec_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
