file(REMOVE_RECURSE
  "CMakeFiles/test_gf.dir/gf/bitmatrix_test.cpp.o"
  "CMakeFiles/test_gf.dir/gf/bitmatrix_test.cpp.o.d"
  "CMakeFiles/test_gf.dir/gf/gf_exhaustive_test.cpp.o"
  "CMakeFiles/test_gf.dir/gf/gf_exhaustive_test.cpp.o.d"
  "CMakeFiles/test_gf.dir/gf/gf_matrix_test.cpp.o"
  "CMakeFiles/test_gf.dir/gf/gf_matrix_test.cpp.o.d"
  "CMakeFiles/test_gf.dir/gf/gf_test.cpp.o"
  "CMakeFiles/test_gf.dir/gf/gf_test.cpp.o.d"
  "test_gf"
  "test_gf.pdb"
  "test_gf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
