file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tensor/buffer_test.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/buffer_test.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/expr_test.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/expr_test.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/kernel_test.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/kernel_test.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/schedule_test.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/schedule_test.cpp.o.d"
  "CMakeFiles/test_tensor.dir/tensor/threadpool_test.cpp.o"
  "CMakeFiles/test_tensor.dir/tensor/threadpool_test.cpp.o.d"
  "test_tensor"
  "test_tensor.pdb"
  "test_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
