file(REMOVE_RECURSE
  "CMakeFiles/test_tune.dir/tune/cost_model_test.cpp.o"
  "CMakeFiles/test_tune.dir/tune/cost_model_test.cpp.o.d"
  "CMakeFiles/test_tune.dir/tune/search_space_test.cpp.o"
  "CMakeFiles/test_tune.dir/tune/search_space_test.cpp.o.d"
  "CMakeFiles/test_tune.dir/tune/tuner_test.cpp.o"
  "CMakeFiles/test_tune.dir/tune/tuner_test.cpp.o.d"
  "CMakeFiles/test_tune.dir/tune/tuning_log_test.cpp.o"
  "CMakeFiles/test_tune.dir/tune/tuning_log_test.cpp.o.d"
  "test_tune"
  "test_tune.pdb"
  "test_tune[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
