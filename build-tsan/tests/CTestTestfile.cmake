# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_gf[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_tune[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ec[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_baselines[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_storage[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_accel[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
