file(REMOVE_RECURSE
  "../bench/bench_memcpy_overhead"
  "../bench/bench_memcpy_overhead.pdb"
  "CMakeFiles/bench_memcpy_overhead.dir/bench_memcpy_overhead.cpp.o"
  "CMakeFiles/bench_memcpy_overhead.dir/bench_memcpy_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memcpy_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
