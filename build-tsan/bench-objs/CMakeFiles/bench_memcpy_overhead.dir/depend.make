# Empty dependencies file for bench_memcpy_overhead.
# This may be replaced when dependencies are built.
