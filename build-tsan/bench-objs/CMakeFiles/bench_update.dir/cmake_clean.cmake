file(REMOVE_RECURSE
  "../bench/bench_update"
  "../bench/bench_update.pdb"
  "CMakeFiles/bench_update.dir/bench_update.cpp.o"
  "CMakeFiles/bench_update.dir/bench_update.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
