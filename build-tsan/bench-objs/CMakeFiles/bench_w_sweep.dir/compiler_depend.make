# Empty compiler generated dependencies file for bench_w_sweep.
# This may be replaced when dependencies are built.
