file(REMOVE_RECURSE
  "../bench/bench_w_sweep"
  "../bench/bench_w_sweep.pdb"
  "CMakeFiles/bench_w_sweep.dir/bench_w_sweep.cpp.o"
  "CMakeFiles/bench_w_sweep.dir/bench_w_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_w_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
