file(REMOVE_RECURSE
  "../bench/bench_fig2_encode"
  "../bench/bench_fig2_encode.pdb"
  "CMakeFiles/bench_fig2_encode.dir/bench_fig2_encode.cpp.o"
  "CMakeFiles/bench_fig2_encode.dir/bench_fig2_encode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
