# Empty dependencies file for bench_lrc.
# This may be replaced when dependencies are built.
