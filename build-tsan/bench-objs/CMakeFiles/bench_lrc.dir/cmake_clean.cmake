file(REMOVE_RECURSE
  "../bench/bench_lrc"
  "../bench/bench_lrc.pdb"
  "CMakeFiles/bench_lrc.dir/bench_lrc.cpp.o"
  "CMakeFiles/bench_lrc.dir/bench_lrc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
