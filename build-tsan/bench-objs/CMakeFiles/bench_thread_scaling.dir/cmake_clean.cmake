file(REMOVE_RECURSE
  "../bench/bench_thread_scaling"
  "../bench/bench_thread_scaling.pdb"
  "CMakeFiles/bench_thread_scaling.dir/bench_thread_scaling.cpp.o"
  "CMakeFiles/bench_thread_scaling.dir/bench_thread_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
