# Empty compiler generated dependencies file for bench_unit_size.
# This may be replaced when dependencies are built.
