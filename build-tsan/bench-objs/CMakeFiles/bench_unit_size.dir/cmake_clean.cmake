file(REMOVE_RECURSE
  "../bench/bench_unit_size"
  "../bench/bench_unit_size.pdb"
  "CMakeFiles/bench_unit_size.dir/bench_unit_size.cpp.o"
  "CMakeFiles/bench_unit_size.dir/bench_unit_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unit_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
