file(REMOVE_RECURSE
  "../bench/bench_accel_checkpoint"
  "../bench/bench_accel_checkpoint.pdb"
  "CMakeFiles/bench_accel_checkpoint.dir/bench_accel_checkpoint.cpp.o"
  "CMakeFiles/bench_accel_checkpoint.dir/bench_accel_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accel_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
