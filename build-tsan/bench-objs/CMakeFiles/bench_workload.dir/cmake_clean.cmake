file(REMOVE_RECURSE
  "../bench/bench_workload"
  "../bench/bench_workload.pdb"
  "CMakeFiles/bench_workload.dir/bench_workload.cpp.o"
  "CMakeFiles/bench_workload.dir/bench_workload.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
