file(REMOVE_RECURSE
  "../bench/bench_tile_ablation"
  "../bench/bench_tile_ablation.pdb"
  "CMakeFiles/bench_tile_ablation.dir/bench_tile_ablation.cpp.o"
  "CMakeFiles/bench_tile_ablation.dir/bench_tile_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tile_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
