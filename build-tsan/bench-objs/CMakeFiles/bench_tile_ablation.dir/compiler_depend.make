# Empty compiler generated dependencies file for bench_tile_ablation.
# This may be replaced when dependencies are built.
