file(REMOVE_RECURSE
  "../bench/bench_cpu_util"
  "../bench/bench_cpu_util.pdb"
  "CMakeFiles/bench_cpu_util.dir/bench_cpu_util.cpp.o"
  "CMakeFiles/bench_cpu_util.dir/bench_cpu_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
