file(REMOVE_RECURSE
  "../bench/bench_decode"
  "../bench/bench_decode.pdb"
  "CMakeFiles/bench_decode.dir/bench_decode.cpp.o"
  "CMakeFiles/bench_decode.dir/bench_decode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
