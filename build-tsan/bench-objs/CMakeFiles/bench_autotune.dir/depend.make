# Empty dependencies file for bench_autotune.
# This may be replaced when dependencies are built.
