file(REMOVE_RECURSE
  "../bench/bench_autotune"
  "../bench/bench_autotune.pdb"
  "CMakeFiles/bench_autotune.dir/bench_autotune.cpp.o"
  "CMakeFiles/bench_autotune.dir/bench_autotune.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
