// A file-sharding tool: the "minio-style" use of erasure coding. Splits
// a file into k data shards + r parity shards on disk; reconstructs the
// original from any k surviving shards.
//
// Usage:
//   file_shards encode <file> <outdir> [k] [r]
//   file_shards decode <outdir> <output-file>
//   file_shards demo                     # self-contained round trip
//
// Shard layout: <outdir>/shard.<i> for i in [0, k+r) plus
// <outdir>/manifest.txt holding "k r w original_size unit_size".
// decode tolerates up to r missing/deleted shard files.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/tvmec.h"
#include "tensor/buffer.h"

namespace fs = std::filesystem;
using namespace tvmec;

namespace {

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot create " + path.string());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Rounds the per-shard size up to the bitmatrix quantum (8*w).
std::size_t shard_size_for(std::size_t file_size, std::size_t k, unsigned w) {
  const std::size_t quantum = 8 * w;
  const std::size_t raw = (file_size + k - 1) / k;
  return std::max<std::size_t>(quantum, (raw + quantum - 1) / quantum * quantum);
}

int cmd_encode(const fs::path& input, const fs::path& outdir, std::size_t k,
               std::size_t r) {
  const ec::CodeParams params{k, r, 8};
  core::Codec codec(params);
  const std::vector<std::uint8_t> bytes = read_file(input);
  const std::size_t unit = shard_size_for(bytes.size(), k, params.w);

  tensor::AlignedBuffer<std::uint8_t> stripe(params.n() * unit);
  std::memcpy(stripe.data(), bytes.data(), bytes.size());
  codec.encode(
      std::span<const std::uint8_t>(stripe.data(), k * unit),
      std::span<std::uint8_t>(stripe.data() + k * unit, r * unit), unit);

  fs::create_directories(outdir);
  for (std::size_t i = 0; i < params.n(); ++i)
    write_file(outdir / ("shard." + std::to_string(i)),
               std::span<const std::uint8_t>(stripe.data() + i * unit, unit));
  std::ofstream manifest(outdir / "manifest.txt");
  manifest << k << " " << r << " " << params.w << " " << bytes.size() << " "
           << unit << "\n";
  std::printf("encoded %zu bytes -> %zu shards of %zu bytes in %s\n",
              bytes.size(), params.n(), unit, outdir.string().c_str());
  return 0;
}

int cmd_decode(const fs::path& outdir, const fs::path& output) {
  std::ifstream manifest(outdir / "manifest.txt");
  std::size_t k = 0, r = 0, original = 0, unit = 0;
  unsigned w = 0;
  if (!(manifest >> k >> r >> w >> original >> unit))
    throw std::runtime_error("bad or missing manifest in " + outdir.string());
  const ec::CodeParams params{k, r, w};
  core::Codec codec(params);

  tensor::AlignedBuffer<std::uint8_t> stripe(params.n() * unit);
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < params.n(); ++i) {
    const fs::path shard = outdir / ("shard." + std::to_string(i));
    if (!fs::exists(shard)) {
      missing.push_back(i);
      continue;
    }
    const auto bytes = read_file(shard);
    if (bytes.size() != unit)
      throw std::runtime_error("shard size mismatch: " + shard.string());
    std::memcpy(stripe.data() + i * unit, bytes.data(), unit);
  }
  if (!missing.empty()) {
    std::printf("missing %zu shard(s); reconstructing\n", missing.size());
    codec.decode(stripe.span(), missing, unit);  // throws if > r missing
  }
  write_file(output,
             std::span<const std::uint8_t>(stripe.data(), original));
  std::printf("decoded %zu bytes -> %s\n", original,
              output.string().c_str());
  return 0;
}

int cmd_demo() {
  const fs::path dir = fs::temp_directory_path() / "tvmec_shards_demo";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Make a ~1 MB input file.
  std::vector<std::uint8_t> payload(1 << 20);
  std::mt19937_64 rng(7);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  const fs::path input = dir / "input.bin";
  write_file(input, payload);

  cmd_encode(input, dir / "shards", 10, 4);

  // Lose 4 shards (the tolerance limit): two data, two parity.
  for (const int i : {0, 7, 10, 13})
    fs::remove(dir / "shards" / ("shard." + std::to_string(i)));
  std::printf("deleted shards 0, 7, 10, 13\n");

  const fs::path restored = dir / "restored.bin";
  cmd_decode(dir / "shards", restored);

  const bool ok = read_file(restored) == payload;
  std::printf("round trip: %s\n", ok ? "EXACT" : "MISMATCH");
  fs::remove_all(dir);
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && std::string(argv[1]) == "demo") return cmd_demo();
    if (argc >= 4 && std::string(argv[1]) == "encode") {
      const std::size_t k = argc > 4 ? std::stoul(argv[4]) : 10;
      const std::size_t r = argc > 5 ? std::stoul(argv[5]) : 4;
      return cmd_encode(argv[2], argv[3], k, r);
    }
    if (argc >= 4 && std::string(argv[1]) == "decode")
      return cmd_decode(argv[2], argv[3]);
    std::printf(
        "usage:\n  %s encode <file> <outdir> [k] [r]\n"
        "  %s decode <outdir> <output>\n  %s demo\n",
        argv[0], argv[0], argv[0]);
    // With no arguments, run the demo so the example is self-exercising.
    return argc == 1 ? cmd_demo() : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
