// An erasure-coded object store surviving disk failures: the classic
// storage-system integration (GFS/Azure/HDFS-style) the paper targets.
//
// Writes a few objects across 8 simulated nodes with a (4, 2) code, kills
// two nodes, shows degraded reads still succeed, then repairs onto
// replacement disks and verifies the store is healthy again.
//
// Build & run:  ./build/examples/object_store_repair

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "storage/stripe_store.h"

int main() {
  using namespace tvmec;

  storage::StripeStore store(ec::CodeParams{4, 2, 8}, /*unit_size=*/64 * 1024,
                             /*num_nodes=*/8);
  std::printf("object store: k=4 r=2, 64 KB units, 8 nodes\n");

  // Write a handful of objects of assorted sizes.
  std::mt19937_64 rng(7);
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> objects;
  for (int i = 0; i < 6; ++i) {
    std::vector<std::uint8_t> payload(100 * 1024 + 37777 * i);
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    const std::string name = "obj-" + std::to_string(i);
    store.put(name, payload);
    objects.emplace_back(name, std::move(payload));
  }
  std::printf("wrote %zu objects (%zu stripes)\n", store.stats().objects,
              store.stats().stripes_written);

  // Two nodes die.
  store.fail_node(1);
  store.fail_node(5);
  std::printf("nodes 1 and 5 failed\n");

  // Every object still reads back exactly (degraded reads reconstruct
  // missing units from parity on the fly).
  for (const auto& [name, payload] : objects) {
    const auto got = store.get(name);
    if (!got || *got != payload) {
      std::printf("degraded read of %s FAILED\n", name.c_str());
      return 1;
    }
  }
  std::printf("all objects readable degraded (%zu degraded reads)\n",
              store.stats().degraded_reads);

  // Replacement disks arrive; rebuild lost units.
  store.revive_node(1);
  store.revive_node(5);
  const std::size_t rebuilt = store.repair();
  std::printf("repair rebuilt %zu units onto replacement nodes\n", rebuilt);

  // Healthy again: a different double failure is survivable.
  store.fail_node(0);
  store.fail_node(3);
  for (const auto& [name, payload] : objects) {
    const auto got = store.get(name);
    if (!got || *got != payload) {
      std::printf("post-repair read of %s FAILED\n", name.c_str());
      return 1;
    }
  }
  std::printf("store survived a second double failure after repair\n");

  const std::size_t corrupt = store.scrub();
  std::printf("scrub found %zu corrupt units\n", corrupt);
  return corrupt == 0 ? 0 : 1;
}
