// The paper's Listing 3, line for line, in this library's te mirror:
// a GEMM and a bitmatrix erasure code declared with identical structure,
// differing only in the reducer (sum -> xor) and combiner (mul -> and).
//
// Both are lowered to the scheduled kernel and executed; the erasure-code
// variant is checked against GF(2^8) reference encoding to show the
// declaration really is a Reed-Solomon encoder.
//
// Build & run:  ./build/examples/tensor_expression

#include <cstdio>
#include <random>

#include "ec/bitmatrix_code.h"
#include "ec/reed_solomon.h"
#include "tensor/buffer.h"
#include "tensor/expr.h"

int main() {
  using namespace tvmec;
  namespace te = tensor::te;

  const ec::CodeParams params{10, 4, 8};
  const std::size_t unit = 64 * 1024;
  const ec::ReedSolomon rs(params);
  const ec::BitmatrixCode bits(rs.parity_matrix());

  const std::size_t M = bits.bits().rows();   // r * w
  const std::size_t K = bits.bits().cols();   // k * w
  const std::size_t N = unit / params.w / 8;  // packet words

  // ---- Listing 3 ----------------------------------------------------
  const te::Placeholder A = te::placeholder(M, K, "A");
  const te::Placeholder B = te::placeholder(K, N, "B");
  const te::IterVar k = te::reduce_axis(K, "k");

  // GEMM
  const te::ComputeDef gemm =
      te::compute(M, N, [&](te::IterVar i, te::IterVar j) {
        return te::reduce(te::BinOp::Add, A(i, k) * B(k, j), k);
      });

  // Bitmatrix erasure code
  const te::ComputeDef ec_def =
      te::compute(M, N, [&](te::IterVar i, te::IterVar j) {
        return te::reduce(te::BinOp::Xor, A(i, k) & B(k, j), k);
      });
  // --------------------------------------------------------------------

  const te::LoweredGemm lowered_gemm = te::lower(gemm);
  const te::LoweredGemm lowered_ec = te::lower(ec_def);
  std::printf("declared two computations over the same %zux%zux%zu loop "
              "nest:\n  gemm lowered to %s kernel\n  ec   lowered to %s "
              "kernel\n",
              M, N, K,
              lowered_gemm.kind() == te::LoweredGemm::Kind::SumProd
                  ? "sum-product"
                  : "xor-and",
              lowered_ec.kind() == te::LoweredGemm::Kind::XorAnd
                  ? "xor-and"
                  : "sum-product");

  // Bind the real generator bitmatrix (as broadcast masks) and real data.
  tensor::AlignedBuffer<std::uint64_t> masks(M * K);
  for (std::size_t i = 0; i < M; ++i)
    for (std::size_t j = 0; j < K; ++j)
      masks[i * K + j] = bits.bits().get(i, j) ? ~std::uint64_t{0} : 0;
  tensor::AlignedBuffer<std::uint8_t> data(params.k * unit);
  std::mt19937_64 rng(5);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(rng());

  tensor::Schedule schedule;
  schedule.tile_m = 4;
  schedule.tile_n = 8;
  tensor::AlignedBuffer<std::uint64_t> parity_words(M * N);
  lowered_ec.run(
      {{A.id(), {masks.data(), M, K, K}},
       {B.id(),
        {reinterpret_cast<const std::uint64_t*>(data.data()), K, N, N}}},
      {parity_words.data(), M, N, N}, schedule);

  // Verify against first-principles GF(2^8) arithmetic (bitpacket
  // embedding, the convention of all bitmatrix erasure coders).
  std::vector<std::uint8_t> reference(params.r * unit);
  ec::apply_matrix_reference_bitpacket(rs.parity_matrix(), data.span(),
                                       reference, unit);
  const bool ok = std::equal(
      reference.begin(), reference.end(),
      reinterpret_cast<const std::uint8_t*>(parity_words.data()));
  std::printf("tensor-expression encode vs GF(2^8) reference: %s\n",
              ok ? "BYTE-IDENTICAL" : "MISMATCH");
  std::printf("(the erasure-code declaration is ~8 lines — the paper's "
              "'few additional lines of code' claim)\n");
  return ok ? 0 : 1;
}
