// Autotuning exploration: what the paper's §6.1 measurement setup does
// with TVM's Autoscheduler, on our tensor substrate.
//
// Tunes the (10, 4, 8) encode at 128 KB units with a small trial budget,
// prints the tuning curve, and compares the tuned schedule against the
// untuned default — the "learning-based tuning discovers optimizations"
// claim made tangible.
//
// Build & run:  ./build/examples/autotune_explore [trials]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/tvmec.h"
#include "tune/tuner.h"

int main(int argc, char** argv) {
  using namespace tvmec;

  const std::size_t trials =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  const ec::CodeParams params{10, 4, 8};
  const std::size_t unit = 128 * 1024;

  core::Codec codec(params);
  std::printf("autotuning k=%zu r=%zu w=%u encode at %zu KB units, "
              "%zu trials, policy=model-guided\n",
              params.k, params.r, params.w, unit / 1024, trials);

  // Baseline: default schedule throughput.
  tensor::AlignedBuffer<std::uint8_t> data(params.k * unit);
  tensor::AlignedBuffer<std::uint8_t> parity(params.r * unit);
  std::mt19937_64 rng(3);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(rng());
  codec.encode(data.span(), parity.span(), unit);  // warm up
  const double default_secs = tune::measure_seconds_median(
      [&] { codec.encode(data.span(), parity.span(), unit); }, 9);
  const double default_gbps =
      static_cast<double>(params.k * unit) / default_secs / 1e9;
  std::printf("default schedule  %-22s : %6.2f GB/s\n",
              codec.encoder().schedule().to_string().c_str(), default_gbps);

  tune::TuneOptions opt;
  opt.policy = tune::Policy::ModelGuided;
  opt.trials = trials;
  const tune::TuneResult result = codec.tune(unit, opt, /*max_threads=*/4);

  std::printf("\ntuning curve (best GB/s after N trials):\n");
  for (std::size_t n = 8; n <= trials; n += 8)
    std::printf("  %4zu trials : %6.2f GB/s\n", n,
                result.best_after(n) / 1e9);

  std::printf("\nbest schedule     %-22s : %6.2f GB/s  (%.2fx over default)\n",
              result.best_schedule.to_string().c_str(),
              result.best_throughput / 1e9,
              result.best_throughput / 1e9 / default_gbps);

  std::printf("\ntop 5 schedules visited:\n");
  auto history = result.history;
  std::sort(history.begin(), history.end(),
            [](const auto& a, const auto& b) {
              return a.throughput > b.throughput;
            });
  for (std::size_t i = 0; i < 5 && i < history.size(); ++i)
    std::printf("  %-22s : %6.2f GB/s\n",
                history[i].schedule.to_string().c_str(),
                history[i].throughput / 1e9);
  return 0;
}
