// Quickstart: encode a stripe, lose units, decode them back.
//
// This is the whole public API surface a storage system needs:
//   1. construct a Codec from (k, r, w),
//   2. hand it k contiguous data units -> get r parity units,
//   3. on failure, hand it the stripe + the erased ids -> data restored.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <random>

#include "core/tvmec.h"
#include "tensor/buffer.h"

int main() {
  using namespace tvmec;

  // A (10, 4) Reed-Solomon code over GF(2^8): tolerates any 4 lost units
  // at 1.4x storage overhead. 128 KB units, as in the paper's evaluation.
  const ec::CodeParams params{10, 4, 8};
  const std::size_t unit_size = 128 * 1024;
  core::Codec codec(params);

  std::printf("tvm-ec quickstart: k=%zu r=%zu w=%u, %zu KB units\n",
              params.k, params.r, params.w, unit_size / 1024);

  // A stripe: k data units followed by r parity units, contiguous.
  tensor::AlignedBuffer<std::uint8_t> stripe(params.n() * unit_size);
  std::mt19937_64 rng(2024);
  for (std::size_t i = 0; i < params.k * unit_size; ++i)
    stripe[i] = static_cast<std::uint8_t>(rng());

  // Encode: parities land in the stripe's tail.
  codec.encode(
      std::span<const std::uint8_t>(stripe.data(), params.k * unit_size),
      std::span<std::uint8_t>(stripe.data() + params.k * unit_size,
                              params.r * unit_size),
      unit_size);
  std::printf("encoded %zu KB of data into %zu KB of parity\n",
              params.k * unit_size / 1024, params.r * unit_size / 1024);

  // Keep a copy so we can prove recovery is exact.
  const tensor::AlignedBuffer<std::uint8_t> original = stripe;

  // Disaster: lose 4 units — two data, two parity.
  const std::vector<std::size_t> erased = {0, 7, 10, 13};
  for (const std::size_t id : erased) {
    std::fill_n(stripe.data() + id * unit_size, unit_size, 0xEE);
    std::printf("erased unit %zu (%s)\n", id,
                id < params.k ? "data" : "parity");
  }

  // Decode restores every erased unit in place.
  codec.decode(stripe.span(), erased, unit_size);

  const bool ok = std::equal(original.span().begin(), original.span().end(),
                             stripe.span().begin());
  std::printf("recovery %s\n", ok ? "EXACT: all units restored" : "FAILED");
  return ok ? 0 : 1;
}
