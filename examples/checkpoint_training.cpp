// The paper's §3 motivating scenario: fault-tolerant ML training via
// in-memory erasure-coded checkpoints across ranks.
//
// Eight "training ranks" each hold a model shard. Every epoch they
// checkpoint into the CheckpointManager, which erasure-codes the shards
// (k=8 data + r=2 parity) so any two simultaneous rank failures lose no
// state — without writing to stable storage.
//
// Build & run:  ./build/examples/checkpoint_training

#include <cstdio>
#include <random>
#include <vector>

#include "storage/checkpoint.h"

namespace {

/// A toy "model shard": per-rank parameters that evolve every epoch.
std::vector<std::uint8_t> train_step(std::vector<std::uint8_t> shard,
                                     std::uint64_t epoch) {
  std::mt19937_64 rng(epoch);
  for (auto& b : shard) b = static_cast<std::uint8_t>(b + (rng() & 0xF));
  return shard;
}

}  // namespace

int main() {
  using namespace tvmec;

  const ec::CodeParams params{8, 2, 8};  // 8 ranks, survives 2 failures
  const std::size_t shard_bytes = 256 * 1024;
  storage::CheckpointManager mgr(params, shard_bytes);

  std::printf("checkpointed training: %zu ranks, %zu parity shards, "
              "%zu KB per shard\n",
              params.k, params.r, shard_bytes / 1024);

  // Initialize rank states.
  std::vector<std::vector<std::uint8_t>> ranks(params.k);
  std::mt19937_64 rng(1);
  for (auto& shard : ranks) {
    shard.resize(shard_bytes);
    for (auto& b : shard) b = static_cast<std::uint8_t>(rng());
  }

  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    // Train.
    for (std::size_t r = 0; r < params.k; ++r)
      ranks[r] = train_step(std::move(ranks[r]), epoch * 17 + r);

    // Checkpoint (in memory, erasure-coded across ranks).
    std::vector<std::span<const std::uint8_t>> spans(ranks.begin(),
                                                     ranks.end());
    const auto version = mgr.checkpoint(spans);
    std::printf("epoch %llu: checkpoint v%llu taken\n",
                static_cast<unsigned long long>(epoch),
                static_cast<unsigned long long>(version));

    // Two ranks die mid-epoch (the common failure mode at scale: a node
    // with multiple GPUs drops out).
    const std::size_t victim_a = epoch % params.k;
    const std::size_t victim_b = (epoch + 4) % params.k;
    mgr.lose_rank(victim_a);
    mgr.lose_rank(victim_b);
    std::printf("  ranks %zu and %zu failed\n", victim_a, victim_b);

    // Restore the victims from the erasure-coded checkpoint.
    const auto restored_a = mgr.recover_shard(victim_a);
    const auto restored_b = mgr.recover_shard(victim_b);
    if (restored_a != ranks[victim_a] || restored_b != ranks[victim_b]) {
      std::printf("  RECOVERY MISMATCH\n");
      return 1;
    }
    ranks[victim_a] = restored_a;
    ranks[victim_b] = restored_b;
    std::printf("  both ranks restored exactly; training continues\n");
  }

  std::printf("finished 3 epochs with 6 rank failures and zero data loss\n");
  return 0;
}
