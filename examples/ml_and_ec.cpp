// One stack, two workloads: the paper's central image is an ML library
// whose GEMM machinery serves erasure coding unchanged. This example
// runs both through the identical kernel executor and schedule:
//
//   1. an MLP forward pass (float GEMMs + ReLU) — the ML workload,
//   2. erasure-coding the MLP's weights across k shards — the storage
//      workload protecting that very model,
//
// then simulates losing r weight shards and restores the model bit-exact.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

#include "core/tvmec.h"
#include "tensor/buffer.h"
#include "tensor/kernel.h"

using namespace tvmec;

namespace {

/// A dense layer y = relu(x W) executed by the scheduled GEMM kernel.
struct DenseLayer {
  std::size_t in = 0;
  std::size_t out = 0;
  tensor::AlignedBuffer<float> weights;  // in x out, row-major

  DenseLayer(std::size_t in_dim, std::size_t out_dim, std::uint64_t seed)
      : in(in_dim), out(out_dim), weights(in_dim * out_dim) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<float> dist(-0.1f, 0.1f);
    for (std::size_t i = 0; i < weights.size(); ++i) weights[i] = dist(rng);
  }

  void forward(const tensor::MatView<const float>& x,
               tensor::MatView<float> y, const tensor::Schedule& s,
               bool relu) const {
    tensor::gemm_sumprod_f32(x, {weights.data(), in, out, out}, y, s);
    if (relu) {
      for (std::size_t i = 0; i < y.rows; ++i)
        for (std::size_t j = 0; j < y.cols; ++j)
          y.at(i, j) = std::max(0.0f, y.at(i, j));
    }
  }
};

}  // namespace

int main() {
  // The one schedule both workloads run under.
  tensor::Schedule schedule;
  schedule.tile_m = 4;
  schedule.tile_n = 16;
  schedule.block_n = 512;
  std::printf("shared kernel schedule: %s\n",
              schedule.to_string().c_str());

  // ---- Workload 1: MLP inference through the GEMM stack --------------
  const std::size_t batch = 64, d_in = 256, d_hidden = 512, d_out = 10;
  DenseLayer l1(d_in, d_hidden, 1), l2(d_hidden, d_out, 2);

  tensor::AlignedBuffer<float> x(batch * d_in), h(batch * d_hidden),
      y(batch * d_out);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = dist(rng);

  l1.forward({x.data(), batch, d_in, d_in}, {h.data(), batch, d_hidden, d_hidden},
             schedule, /*relu=*/true);
  l2.forward({h.data(), batch, d_hidden, d_hidden},
             {y.data(), batch, d_out, d_out}, schedule, /*relu=*/false);

  float checksum = 0;
  for (std::size_t i = 0; i < y.size(); ++i) checksum += y[i];
  std::printf("MLP forward pass: batch %zu, %zux%zu -> %zux%zu, output "
              "checksum %.4f\n",
              batch, d_in, d_hidden, d_hidden, d_out, checksum);

  // ---- Workload 2: erasure-code the model with the same stack --------
  const ec::CodeParams params{8, 3, 8};
  core::Codec codec(params);
  const std::size_t model_bytes =
      (l1.weights.size() + l2.weights.size()) * sizeof(float);
  const std::size_t quantum = 8 * params.w;
  const std::size_t unit =
      ((model_bytes + params.k - 1) / params.k + quantum - 1) / quantum *
      quantum;

  tensor::AlignedBuffer<std::uint8_t> stripe(params.n() * unit);
  std::memcpy(stripe.data(), l1.weights.data(),
              l1.weights.size() * sizeof(float));
  std::memcpy(stripe.data() + l1.weights.size() * sizeof(float),
              l2.weights.data(), l2.weights.size() * sizeof(float));
  codec.set_schedule(schedule);  // the very same schedule object
  codec.encode(
      std::span<const std::uint8_t>(stripe.data(), params.k * unit),
      std::span<std::uint8_t>(stripe.data() + params.k * unit,
                              params.r * unit),
      unit);
  std::printf("model erasure-coded: %zu weight bytes -> %zu shards of %zu "
              "bytes (+%zu parity)\n",
              model_bytes, params.k, unit, params.r);

  // Lose r shards, recover, reload, rerun inference: identical output.
  const tensor::AlignedBuffer<std::uint8_t> original = stripe;
  const std::vector<std::size_t> lost = {1, 4, 9};
  for (const auto id : lost) std::fill_n(stripe.data() + id * unit, unit, 0);
  codec.decode(stripe.span(), lost, unit);
  const bool shards_ok = std::equal(original.span().begin(),
                                    original.span().end(),
                                    stripe.span().begin());

  DenseLayer l1r(d_in, d_hidden, 999), l2r(d_hidden, d_out, 999);
  std::memcpy(l1r.weights.data(), stripe.data(),
              l1r.weights.size() * sizeof(float));
  std::memcpy(l2r.weights.data(),
              stripe.data() + l1r.weights.size() * sizeof(float),
              l2r.weights.size() * sizeof(float));
  tensor::AlignedBuffer<float> y2(batch * d_out);
  l1r.forward({x.data(), batch, d_in, d_in},
              {h.data(), batch, d_hidden, d_hidden}, schedule, true);
  l2r.forward({h.data(), batch, d_hidden, d_hidden},
              {y2.data(), batch, d_out, d_out}, schedule, false);
  const bool inference_ok =
      std::memcmp(y.data(), y2.data(), y.size() * sizeof(float)) == 0;

  std::printf("lost shards {1, 4, 9}; recovery %s; restored-model inference "
              "%s\n",
              shards_ok ? "EXACT" : "FAILED",
              inference_ok ? "bit-identical" : "DIVERGED");
  return shards_ok && inference_ok ? 0 : 1;
}
